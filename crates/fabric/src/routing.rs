//! Shortest-path routing over healthy links, and fail-over recomputation.
//!
//! Routing is breadth-first over link hops (all hops in a fabric have the
//! same nominal latency class), restricted to healthy links and healthy
//! intermediate switches. When a link or switch dies, affected connections
//! are re-routed by simply recomputing — the OFMF layer turns "path changed"
//! into a fail-over event for subscribed clients.

use crate::ids::{EndpointId, LinkId};
use crate::topology::{Attach, Topology};
use std::collections::VecDeque;

/// A route between two endpoints, as the sequence of links traversed.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Links in order from initiator to target.
    pub links: Vec<LinkId>,
    /// Total one-way latency in nanoseconds.
    pub latency_ns: u64,
    /// Bottleneck bandwidth along the path in Gbit/s.
    pub bandwidth_gbps: f64,
}

impl Path {
    /// Number of link hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Compute a shortest path (fewest links) from `from` to `to` over healthy
/// links and healthy switches. Returns `None` when disconnected.
pub fn route(topo: &Topology, from: EndpointId, to: EndpointId) -> Option<Path> {
    route_filtered(topo, from, to, |_, _| true)
}

/// [`route`] restricted to links accepted by `ok_link` (used for
/// QoS-aware routing: only links with enough unreserved bandwidth).
pub fn route_filtered<F>(topo: &Topology, from: EndpointId, to: EndpointId, ok_link: F) -> Option<Path>
where
    F: Fn(LinkId, &crate::topology::LinkEdge) -> bool,
{
    if from == to {
        return Some(Path {
            links: Vec::new(),
            latency_ns: 0,
            bandwidth_gbps: f64::INFINITY,
        });
    }
    if !topo.attach_healthy(Attach::Endpoint(from)) || !topo.attach_healthy(Attach::Endpoint(to)) {
        return None;
    }
    // BFS over attach points; parent pointers reconstruct the link sequence.
    let start = Attach::Endpoint(from);
    let goal = Attach::Endpoint(to);
    let mut visited: Vec<Attach> = vec![start];
    let mut parent: Vec<(usize, LinkId)> = vec![(usize::MAX, LinkId(u32::MAX))];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(vi) = queue.pop_front() {
        let at = visited[vi];
        // Collect first to avoid borrowing issues while pushing.
        let nexts: Vec<(LinkId, Attach)> = topo
            .incident_links(at)
            .filter(|(lid, edge)| ok_link(*lid, edge))
            .map(|(lid, _)| (lid, topo.far_side(lid, at)))
            .collect();
        for (lid, far) in nexts {
            if !topo.attach_healthy(far) {
                continue;
            }
            // Traffic only transits switches; endpoints other than the goal
            // are leaves.
            if matches!(far, Attach::Endpoint(_)) && far != goal {
                continue;
            }
            if visited.contains(&far) {
                continue;
            }
            visited.push(far);
            parent.push((vi, lid));
            if far == goal {
                // Reconstruct.
                let mut links = Vec::new();
                let mut cur = visited.len() - 1;
                while cur != 0 {
                    let (p, l) = parent[cur];
                    links.push(l);
                    cur = p;
                }
                links.reverse();
                let latency_ns = links.iter().map(|l| topo.links[l.index()].latency_ns).sum();
                let bandwidth_gbps = links
                    .iter()
                    .map(|l| topo.links[l.index()].bandwidth_gbps)
                    .fold(f64::INFINITY, f64::min);
                return Some(Path {
                    links,
                    latency_ns,
                    bandwidth_gbps,
                });
            }
            queue.push_back(visited.len() - 1);
        }
    }
    None
}

/// Widest-shortest path: among all minimum-hop routes from `from` to `to`,
/// pick the one maximizing the bottleneck value reported by `width_of`
/// (typically residual bandwidth). Used by congestion-aware placement
/// probes so a probe reports the route the fabric would actually prefer —
/// in a two-spine pod with one congested spine, plain BFS may return the
/// congested path while the fabric routes QoS traffic around it.
pub fn route_widest<F>(topo: &Topology, from: EndpointId, to: EndpointId, width_of: F) -> Option<Path>
where
    F: Fn(LinkId) -> f64,
{
    if from == to {
        return Some(Path {
            links: Vec::new(),
            latency_ns: 0,
            bandwidth_gbps: f64::INFINITY,
        });
    }
    if !topo.attach_healthy(Attach::Endpoint(from)) || !topo.attach_healthy(Attach::Endpoint(to)) {
        return None;
    }
    let start = Attach::Endpoint(from);
    let goal = Attach::Endpoint(to);
    // Label-correcting search over (hops, -width): a node is improved when a
    // same-hop path with a wider bottleneck reaches it. Widths only increase
    // per node at a fixed hop count, so the re-queueing terminates.
    struct Label {
        at: Attach,
        hops: usize,
        width: f64,
        parent: usize,
        via: LinkId,
    }
    let mut labels: Vec<Label> = vec![Label {
        at: start,
        hops: 0,
        width: f64::INFINITY,
        parent: usize::MAX,
        via: LinkId(u32::MAX),
    }];
    // Best (hops, width) seen per attach point, indexed into `labels`.
    let mut best: Vec<(Attach, usize)> = vec![(start, 0)];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(li) = queue.pop_front() {
        let (at, hops, width) = (labels[li].at, labels[li].hops, labels[li].width);
        // Stale entry: a better label for this node was queued later.
        if best.iter().any(|(a, b)| *a == at && labels[*b].hops < hops) {
            continue;
        }
        let nexts: Vec<(LinkId, Attach)> = topo
            .incident_links(at)
            .map(|(lid, _)| (lid, topo.far_side(lid, at)))
            .collect();
        for (lid, far) in nexts {
            if !topo.attach_healthy(far) {
                continue;
            }
            if matches!(far, Attach::Endpoint(_)) && far != goal {
                continue;
            }
            let cand_width = width.min(width_of(lid));
            let cand_hops = hops + 1;
            let existing = best.iter().position(|(a, _)| *a == far);
            let improves = match existing {
                None => true,
                Some(pos) => {
                    let cur = &labels[best[pos].1];
                    cand_hops < cur.hops || (cand_hops == cur.hops && cand_width > cur.width)
                }
            };
            if !improves {
                continue;
            }
            labels.push(Label {
                at: far,
                hops: cand_hops,
                width: cand_width,
                parent: li,
                via: lid,
            });
            let new_idx = labels.len() - 1;
            match existing {
                Some(pos) => best[pos].1 = new_idx,
                None => best.push((far, new_idx)),
            }
            if far != goal {
                queue.push_back(new_idx);
            }
        }
    }
    let goal_idx = best.iter().find(|(a, _)| *a == goal).map(|(_, i)| *i)?;
    let mut links = Vec::new();
    let mut cur = goal_idx;
    while labels[cur].parent != usize::MAX {
        links.push(labels[cur].via);
        cur = labels[cur].parent;
    }
    links.reverse();
    let latency_ns = links.iter().map(|l| topo.links[l.index()].latency_ns).sum();
    let bandwidth_gbps = links
        .iter()
        .map(|l| topo.links[l.index()].bandwidth_gbps)
        .fold(f64::INFINITY, f64::min);
    Some(Path {
        links,
        latency_ns,
        bandwidth_gbps,
    })
}

/// True if `path` only traverses healthy links and switches in the current
/// topology (used to decide whether an established connection must fail
/// over).
pub fn path_healthy(topo: &Topology, path: &Path, from: EndpointId) -> bool {
    let mut at = Attach::Endpoint(from);
    for l in &path.links {
        let edge = &topo.links[l.index()];
        if !edge.healthy {
            return false;
        }
        if edge.a != at && edge.b != at {
            return false; // path no longer contiguous
        }
        at = topo.far_side(*l, at);
        if !topo.attach_healthy(at) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};
    use crate::topology::{presets, TopologyBuilder};

    fn two_tier() -> Topology {
        let mut devs = presets::compute_nodes(2, 8, 16);
        devs.extend(presets::memory_appliances(1, 1024));
        TopologyBuilder::new().leaf_spine(2, 2, devs)
    }

    #[test]
    fn routes_exist_in_leaf_spine() {
        let t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let p = route(&t, cn, mem).expect("connected");
        assert!(p.hops() >= 2, "must cross at least access+access");
        assert!(p.bandwidth_gbps >= 100.0);
        assert!(path_healthy(&t, &p, cn));
    }

    #[test]
    fn same_endpoint_is_zero_hops() {
        let t = two_tier();
        let cn = t.initiator_endpoints()[0];
        assert_eq!(route(&t, cn, cn).unwrap().hops(), 0);
    }

    #[test]
    fn route_avoids_dead_links_and_survives_spine_loss() {
        let mut t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let p1 = route(&t, cn, mem).unwrap();
        // Kill every link on the first path that is a trunk; a second spine
        // should provide an alternative.
        for l in &p1.links {
            let e = &t.links[l.index()];
            if matches!((e.a, e.b), (Attach::Switch(_), Attach::Switch(_))) {
                t.links[l.index()].healthy = false;
            }
        }
        assert!(!path_healthy(&t, &p1, cn) || p1.links.iter().all(|l| t.links[l.index()].healthy));
        let p2 = route(&t, cn, mem).expect("alternate spine path");
        assert!(path_healthy(&t, &p2, cn));
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        // Kill the target's access link.
        let mem_at = Attach::Endpoint(mem);
        let access: Vec<_> = t.incident_links(mem_at).map(|(l, _)| l).collect();
        for l in access {
            t.links[l.index()].healthy = false;
        }
        assert!(route(&t, cn, mem).is_none());
    }

    #[test]
    fn dead_endpoint_device_is_unroutable() {
        let mut t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        t.device_of_mut(mem).healthy = false;
        assert!(route(&t, cn, mem).is_none());
    }

    #[test]
    fn endpoints_do_not_transit_traffic() {
        // Star: cn0, cn1, mem0 all on one switch. Path cn0->mem0 must not
        // route through cn1.
        let mut devs = presets::compute_nodes(2, 8, 16);
        devs.push(Device::new("mem0", DeviceKind::MemoryAppliance { capacity_mib: 10 }));
        let t = TopologyBuilder::new().star(devs);
        let p = route(&t, t.initiator_endpoints()[0], t.target_endpoints()[0]).unwrap();
        assert_eq!(p.hops(), 2); // access up, access down
    }

    #[test]
    fn widest_matches_bfs_when_uncongested() {
        let t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let bfs = route(&t, cn, mem).unwrap();
        let widest = route_widest(&t, cn, mem, |l| t.links[l.index()].bandwidth_gbps).unwrap();
        assert_eq!(widest.hops(), bfs.hops());
        assert_eq!(widest.bandwidth_gbps, bfs.bandwidth_gbps);
    }

    #[test]
    fn widest_routes_around_a_congested_spine() {
        // cn01 sits on leaf1, mem00 on leaf0, so the route must cross one of
        // the two spines (SwitchId 0 and 1). Mark every trunk through spine 0
        // as nearly exhausted and check the widest route avoids it.
        let t = two_tier();
        let cn = t.initiator_endpoints()[1];
        let mem = t.target_endpoints()[0];
        let congested: Vec<LinkId> = t
            .links
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!((e.a, e.b), (Attach::Switch(a), Attach::Switch(b)) if a.index() == 0 || b.index() == 0)
            })
            .map(|(i, _)| LinkId(i as u32))
            .collect();
        assert!(!congested.is_empty(), "expected trunks through first spine");
        let residual = |l: LinkId| {
            if congested.contains(&l) {
                1.0
            } else {
                t.links[l.index()].bandwidth_gbps
            }
        };
        let p = route_widest(&t, cn, mem, residual).expect("route exists");
        assert!(
            p.links.iter().all(|l| !congested.contains(l)),
            "widest path must avoid the congested spine: {:?}",
            p.links
        );
        assert_eq!(p.hops(), route(&t, cn, mem).unwrap().hops(), "still a shortest path");
    }

    #[test]
    fn ring_reroutes_the_long_way() {
        let mut devs = presets::compute_nodes(1, 8, 16);
        devs.extend(presets::memory_appliances(1, 10));
        let mut t = TopologyBuilder::new().ring(4, devs);
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let p1 = route(&t, cn, mem).unwrap();
        // Fail the first trunk on the short path.
        let trunk = p1
            .links
            .iter()
            .find(|l| {
                let e = &t.links[l.index()];
                matches!((e.a, e.b), (Attach::Switch(_), Attach::Switch(_)))
            })
            .copied()
            .expect("short path uses a trunk");
        t.links[trunk.index()].healthy = false;
        let p2 = route(&t, cn, mem).expect("long way around the ring");
        assert!(p2.hops() > p1.hops());
    }
}
