//! Shortest-path routing over healthy links, and fail-over recomputation.
//!
//! Routing is breadth-first over link hops (all hops in a fabric have the
//! same nominal latency class), restricted to healthy links and healthy
//! intermediate switches. When a link or switch dies, affected connections
//! are re-routed by simply recomputing — the OFMF layer turns "path changed"
//! into a fail-over event for subscribed clients.

use crate::ids::{EndpointId, LinkId};
use crate::topology::{Attach, Topology};
use std::collections::VecDeque;

/// A route between two endpoints, as the sequence of links traversed.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Links in order from initiator to target.
    pub links: Vec<LinkId>,
    /// Total one-way latency in nanoseconds.
    pub latency_ns: u64,
    /// Bottleneck bandwidth along the path in Gbit/s.
    pub bandwidth_gbps: f64,
}

impl Path {
    /// Number of link hops.
    pub fn hops(&self) -> usize {
        self.links.len()
    }
}

/// Compute a shortest path (fewest links) from `from` to `to` over healthy
/// links and healthy switches. Returns `None` when disconnected.
pub fn route(topo: &Topology, from: EndpointId, to: EndpointId) -> Option<Path> {
    route_filtered(topo, from, to, |_, _| true)
}

/// [`route`] restricted to links accepted by `ok_link` (used for
/// QoS-aware routing: only links with enough unreserved bandwidth).
pub fn route_filtered<F>(topo: &Topology, from: EndpointId, to: EndpointId, ok_link: F) -> Option<Path>
where
    F: Fn(LinkId, &crate::topology::LinkEdge) -> bool,
{
    if from == to {
        return Some(Path {
            links: Vec::new(),
            latency_ns: 0,
            bandwidth_gbps: f64::INFINITY,
        });
    }
    if !topo.attach_healthy(Attach::Endpoint(from)) || !topo.attach_healthy(Attach::Endpoint(to)) {
        return None;
    }
    // BFS over attach points; parent pointers reconstruct the link sequence.
    let start = Attach::Endpoint(from);
    let goal = Attach::Endpoint(to);
    let mut visited: Vec<Attach> = vec![start];
    let mut parent: Vec<(usize, LinkId)> = vec![(usize::MAX, LinkId(u32::MAX))];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(vi) = queue.pop_front() {
        let at = visited[vi];
        // Collect first to avoid borrowing issues while pushing.
        let nexts: Vec<(LinkId, Attach)> = topo
            .incident_links(at)
            .filter(|(lid, edge)| ok_link(*lid, edge))
            .map(|(lid, _)| (lid, topo.far_side(lid, at)))
            .collect();
        for (lid, far) in nexts {
            if !topo.attach_healthy(far) {
                continue;
            }
            // Traffic only transits switches; endpoints other than the goal
            // are leaves.
            if matches!(far, Attach::Endpoint(_)) && far != goal {
                continue;
            }
            if visited.contains(&far) {
                continue;
            }
            visited.push(far);
            parent.push((vi, lid));
            if far == goal {
                // Reconstruct.
                let mut links = Vec::new();
                let mut cur = visited.len() - 1;
                while cur != 0 {
                    let (p, l) = parent[cur];
                    links.push(l);
                    cur = p;
                }
                links.reverse();
                let latency_ns = links.iter().map(|l| topo.links[l.index()].latency_ns).sum();
                let bandwidth_gbps = links
                    .iter()
                    .map(|l| topo.links[l.index()].bandwidth_gbps)
                    .fold(f64::INFINITY, f64::min);
                return Some(Path {
                    links,
                    latency_ns,
                    bandwidth_gbps,
                });
            }
            queue.push_back(visited.len() - 1);
        }
    }
    None
}

/// True if `path` only traverses healthy links and switches in the current
/// topology (used to decide whether an established connection must fail
/// over).
pub fn path_healthy(topo: &Topology, path: &Path, from: EndpointId) -> bool {
    let mut at = Attach::Endpoint(from);
    for l in &path.links {
        let edge = &topo.links[l.index()];
        if !edge.healthy {
            return false;
        }
        if edge.a != at && edge.b != at {
            return false; // path no longer contiguous
        }
        at = topo.far_side(*l, at);
        if !topo.attach_healthy(at) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceKind};
    use crate::topology::{presets, TopologyBuilder};

    fn two_tier() -> Topology {
        let mut devs = presets::compute_nodes(2, 8, 16);
        devs.extend(presets::memory_appliances(1, 1024));
        TopologyBuilder::new().leaf_spine(2, 2, devs)
    }

    #[test]
    fn routes_exist_in_leaf_spine() {
        let t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let p = route(&t, cn, mem).expect("connected");
        assert!(p.hops() >= 2, "must cross at least access+access");
        assert!(p.bandwidth_gbps >= 100.0);
        assert!(path_healthy(&t, &p, cn));
    }

    #[test]
    fn same_endpoint_is_zero_hops() {
        let t = two_tier();
        let cn = t.initiator_endpoints()[0];
        assert_eq!(route(&t, cn, cn).unwrap().hops(), 0);
    }

    #[test]
    fn route_avoids_dead_links_and_survives_spine_loss() {
        let mut t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let p1 = route(&t, cn, mem).unwrap();
        // Kill every link on the first path that is a trunk; a second spine
        // should provide an alternative.
        for l in &p1.links {
            let e = &t.links[l.index()];
            if matches!((e.a, e.b), (Attach::Switch(_), Attach::Switch(_))) {
                t.links[l.index()].healthy = false;
            }
        }
        assert!(!path_healthy(&t, &p1, cn) || p1.links.iter().all(|l| t.links[l.index()].healthy));
        let p2 = route(&t, cn, mem).expect("alternate spine path");
        assert!(path_healthy(&t, &p2, cn));
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        // Kill the target's access link.
        let mem_at = Attach::Endpoint(mem);
        let access: Vec<_> = t.incident_links(mem_at).map(|(l, _)| l).collect();
        for l in access {
            t.links[l.index()].healthy = false;
        }
        assert!(route(&t, cn, mem).is_none());
    }

    #[test]
    fn dead_endpoint_device_is_unroutable() {
        let mut t = two_tier();
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        t.device_of_mut(mem).healthy = false;
        assert!(route(&t, cn, mem).is_none());
    }

    #[test]
    fn endpoints_do_not_transit_traffic() {
        // Star: cn0, cn1, mem0 all on one switch. Path cn0->mem0 must not
        // route through cn1.
        let mut devs = presets::compute_nodes(2, 8, 16);
        devs.push(Device::new("mem0", DeviceKind::MemoryAppliance { capacity_mib: 10 }));
        let t = TopologyBuilder::new().star(devs);
        let p = route(&t, t.initiator_endpoints()[0], t.target_endpoints()[0]).unwrap();
        assert_eq!(p.hops(), 2); // access up, access down
    }

    #[test]
    fn ring_reroutes_the_long_way() {
        let mut devs = presets::compute_nodes(1, 8, 16);
        devs.extend(presets::memory_appliances(1, 10));
        let mut t = TopologyBuilder::new().ring(4, devs);
        let cn = t.initiator_endpoints()[0];
        let mem = t.target_endpoints()[0];
        let p1 = route(&t, cn, mem).unwrap();
        // Fail the first trunk on the short path.
        let trunk = p1
            .links
            .iter()
            .find(|l| {
                let e = &t.links[l.index()];
                matches!((e.a, e.b), (Attach::Switch(_), Attach::Switch(_)))
            })
            .copied()
            .expect("short path uses a trunk");
        t.links[trunk.index()].healthy = false;
        let p2 = route(&t, cn, mem).expect("long way around the ring");
        assert!(p2.hops() > p1.hops());
    }
}
