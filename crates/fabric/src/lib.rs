//! # fabric-sim
//!
//! Deterministic simulator of the **hardware substrate** the OFMF manages:
//! network fabrics (switches, ports, links), fabric-attached devices
//! (compute nodes, GPUs, CXL memory appliances, NVMe-oF subsystems) and the
//! fabric-manager operations an OFMF Agent drives (discovery, zoning,
//! connection establishment, fail-over).
//!
//! The paper's substrate is physical CXL/InfiniBand/NVMe-oF hardware behind
//! vendor fabric managers. None of that is available here, so this crate
//! provides the closest synthetic equivalent that exercises the same
//! management-plane code paths:
//!
//! * [`topology`] — the fabric graph and builders (leaf–spine, ring, star).
//! * [`device`] — device models with allocatable capacity (memory chunks,
//!   NVMe namespaces, GPU grants).
//! * [`routing`] — shortest-path routing over healthy links and fail-over
//!   recomputation.
//! * [`zoning`] — zones (visibility groups) and connections
//!   (initiator→target bindings), with enforcement.
//! * [`failure`] — fault injection: link flaps, switch death, device loss.
//! * [`telemetry`] — seeded, reproducible hardware telemetry streams.
//! * [`fabric`] — the [`fabric::FabricSim`] facade agents talk to, and the
//!   [`fabric::FabricEvent`] stream they forward to the OFMF.
//!
//! Everything is deterministic given a seed: repetition `r` of any sampled
//! stream derives its RNG from `(seed, label, r)` so parallel and serial
//! runs agree exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod fabric;
pub mod failure;
pub mod ids;
pub mod rng;
pub mod routing;
pub mod telemetry;
pub mod topology;
pub mod zoning;

pub use device::{Device, DeviceKind};
pub use fabric::{FabricConfig, FabricEvent, FabricSim, RouteProbe};
pub use ids::{ConnectionId, DeviceId, EndpointId, LinkId, SwitchId, ZoneId};
pub use routing::Path;
pub use topology::{Topology, TopologyBuilder};
