//! The fabric graph: switches, links and endpoints, plus topology builders.
//!
//! A topology is a bipartite-ish graph: endpoints attach to switches via
//! access links; switches interconnect via trunk links. Builders produce the
//! shapes common in disaggregated racks: a single star switch, a leaf–spine
//! pod, and a ring.

use crate::device::{Device, DeviceKind};
use crate::ids::{DeviceId, EndpointId, LinkId, SwitchId};
use serde::{Deserialize, Serialize};

/// A switch node in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwitchNode {
    /// Stable name used for Redfish ids.
    pub name: String,
    /// Port count advertised to the management plane.
    pub radix: u32,
    /// False once failed via fault injection.
    pub healthy: bool,
}

/// One end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attach {
    /// A switch.
    Switch(SwitchId),
    /// An endpoint (device attach point).
    Endpoint(EndpointId),
}

/// A link between two attach points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkEdge {
    /// One side.
    pub a: Attach,
    /// Other side.
    pub b: Attach,
    /// Bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// One-way latency in nanoseconds.
    pub latency_ns: u64,
    /// False once failed via fault injection.
    pub healthy: bool,
}

/// An endpoint: where a device meets the fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndpointNode {
    /// Stable name used for Redfish ids.
    pub name: String,
    /// The device behind the endpoint.
    pub device: DeviceId,
}

/// The fabric graph.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// Switches by id.
    pub switches: Vec<SwitchNode>,
    /// Links by id.
    pub links: Vec<LinkEdge>,
    /// Endpoints by id.
    pub endpoints: Vec<EndpointNode>,
    /// Devices by id.
    pub devices: Vec<Device>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a switch.
    pub fn add_switch(&mut self, name: impl Into<String>, radix: u32) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(SwitchNode {
            name: name.into(),
            radix,
            healthy: true,
        });
        id
    }

    /// Add a device and its endpoint, attached to `switch` by an access link.
    pub fn attach_device(
        &mut self,
        switch: SwitchId,
        device: Device,
        bandwidth_gbps: f64,
        latency_ns: u64,
    ) -> (EndpointId, DeviceId, LinkId) {
        let dev_id = DeviceId(self.devices.len() as u32);
        let ep_name = format!("{}-ep", device.name);
        self.devices.push(device);
        let ep_id = EndpointId(self.endpoints.len() as u32);
        self.endpoints.push(EndpointNode {
            name: ep_name,
            device: dev_id,
        });
        let link_id = self.add_link(
            Attach::Switch(switch),
            Attach::Endpoint(ep_id),
            bandwidth_gbps,
            latency_ns,
        );
        (ep_id, dev_id, link_id)
    }

    /// Add a trunk link between two switches (or any two attach points).
    pub fn add_link(&mut self, a: Attach, b: Attach, bandwidth_gbps: f64, latency_ns: u64) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkEdge {
            a,
            b,
            bandwidth_gbps,
            latency_ns,
            healthy: true,
        });
        id
    }

    /// Healthy links incident to an attach point.
    pub fn incident_links(&self, at: Attach) -> impl Iterator<Item = (LinkId, &LinkEdge)> + '_ {
        self.links
            .iter()
            .enumerate()
            .filter(move |(_, l)| l.healthy && (l.a == at || l.b == at))
            .map(|(i, l)| (LinkId(i as u32), l))
    }

    /// The far side of a link from `at`.
    pub fn far_side(&self, link: LinkId, at: Attach) -> Attach {
        let l = &self.links[link.index()];
        if l.a == at {
            l.b
        } else {
            l.a
        }
    }

    /// Whether an attach point is currently healthy (endpoint devices and
    /// switches can both fail).
    pub fn attach_healthy(&self, at: Attach) -> bool {
        match at {
            Attach::Switch(s) => self.switches[s.index()].healthy,
            Attach::Endpoint(e) => self.devices[self.endpoints[e.index()].device.index()].healthy,
        }
    }

    /// The device behind an endpoint.
    pub fn device_of(&self, ep: EndpointId) -> &Device {
        &self.devices[self.endpoints[ep.index()].device.index()]
    }

    /// Mutable device behind an endpoint.
    pub fn device_of_mut(&mut self, ep: EndpointId) -> &mut Device {
        &mut self.devices[self.endpoints[ep.index()].device.index()]
    }

    /// Endpoint ids whose devices are initiators (compute nodes).
    pub fn initiator_endpoints(&self) -> Vec<EndpointId> {
        (0..self.endpoints.len() as u32)
            .map(EndpointId)
            .filter(|e| self.device_of(*e).kind.is_initiator())
            .collect()
    }

    /// Endpoint ids whose devices are targets.
    pub fn target_endpoints(&self) -> Vec<EndpointId> {
        (0..self.endpoints.len() as u32)
            .map(EndpointId)
            .filter(|e| !self.device_of(*e).kind.is_initiator())
            .collect()
    }
}

/// Fluent builder for common disaggregated-rack shapes.
#[derive(Debug)]
pub struct TopologyBuilder {
    topo: Topology,
    access_gbps: f64,
    trunk_gbps: f64,
    latency_ns: u64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            topo: Topology::new(),
            access_gbps: 100.0,
            trunk_gbps: 400.0,
            latency_ns: 500,
        }
    }
}

impl TopologyBuilder {
    /// Start a builder with default link characteristics (100 Gb/s access,
    /// 400 Gb/s trunk, 500 ns hops — EDR-InfiniBand-like).
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Override access-link bandwidth.
    #[must_use]
    pub fn access_gbps(mut self, g: f64) -> Self {
        self.access_gbps = g;
        self
    }

    /// Override trunk-link bandwidth.
    #[must_use]
    pub fn trunk_gbps(mut self, g: f64) -> Self {
        self.trunk_gbps = g;
        self
    }

    /// Build a single-switch star with the given devices attached.
    pub fn star(mut self, devices: Vec<Device>) -> Topology {
        let sw = self.topo.add_switch("sw0", devices.len() as u32 + 4);
        for d in devices {
            self.topo.attach_device(sw, d, self.access_gbps, self.latency_ns);
        }
        self.topo
    }

    /// Build a leaf–spine pod: `spines` spine switches, `leaves` leaf
    /// switches, full bipartite trunks, and devices distributed round-robin
    /// across leaves.
    pub fn leaf_spine(mut self, spines: usize, leaves: usize, devices: Vec<Device>) -> Topology {
        let spine_ids: Vec<SwitchId> = (0..spines)
            .map(|i| self.topo.add_switch(format!("spine{i}"), 64))
            .collect();
        let leaf_ids: Vec<SwitchId> = (0..leaves)
            .map(|i| self.topo.add_switch(format!("leaf{i}"), 48))
            .collect();
        for &l in &leaf_ids {
            for &s in &spine_ids {
                self.topo
                    .add_link(Attach::Switch(l), Attach::Switch(s), self.trunk_gbps, self.latency_ns);
            }
        }
        for (i, d) in devices.into_iter().enumerate() {
            let leaf = leaf_ids[i % leaf_ids.len()];
            self.topo.attach_device(leaf, d, self.access_gbps, self.latency_ns);
        }
        self.topo
    }

    /// Build a cascaded multi-appliance fabric, the shape of stacked PCIe
    /// expansion chassis: one head switch carrying every initiator, plus
    /// `appliances` appliance switches. Each appliance trunks to the head
    /// (star uplink) and to the next appliance in the chain (cascade hop),
    /// and target devices are distributed round-robin across appliances.
    /// Initiator devices always land on the head. The chain links give
    /// equal-hop alternatives for adjacent appliances, so congestion-aware
    /// routing has real choices to make.
    pub fn cascade(mut self, appliances: usize, devices: Vec<Device>) -> Topology {
        assert!(appliances >= 1, "a cascade needs at least 1 appliance");
        let head = self.topo.add_switch("head", 96);
        let app_ids: Vec<SwitchId> = (0..appliances)
            .map(|i| self.topo.add_switch(format!("app{i}"), 48))
            .collect();
        for &a in &app_ids {
            self.topo.add_link(
                Attach::Switch(head),
                Attach::Switch(a),
                self.trunk_gbps,
                self.latency_ns,
            );
        }
        for w in app_ids.windows(2) {
            self.topo.add_link(
                Attach::Switch(w[0]),
                Attach::Switch(w[1]),
                self.trunk_gbps,
                self.latency_ns,
            );
        }
        let mut next_app = 0usize;
        for d in devices {
            if d.kind.is_initiator() {
                self.topo.attach_device(head, d, self.access_gbps, self.latency_ns);
            } else {
                let app = app_ids[next_app % app_ids.len()];
                next_app += 1;
                self.topo.attach_device(app, d, self.access_gbps, self.latency_ns);
            }
        }
        self.topo
    }

    /// Build a ring of `n` switches with devices round-robin attached.
    /// Rings exercise multi-hop routing and fail-over (two disjoint paths).
    pub fn ring(mut self, n: usize, devices: Vec<Device>) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 switches");
        let ids: Vec<SwitchId> = (0..n).map(|i| self.topo.add_switch(format!("ring{i}"), 16)).collect();
        for i in 0..n {
            let a = ids[i];
            let b = ids[(i + 1) % n];
            self.topo
                .add_link(Attach::Switch(a), Attach::Switch(b), self.trunk_gbps, self.latency_ns);
        }
        for (i, d) in devices.into_iter().enumerate() {
            self.topo
                .attach_device(ids[i % n], d, self.access_gbps, self.latency_ns);
        }
        self.topo
    }
}

/// Convenience constructors for standard device sets.
pub mod presets {
    use super::*;

    /// `n` compute nodes named `cn00…`, each with `cores`/`mem_gib`.
    pub fn compute_nodes(n: usize, cores: u32, mem_gib: u64) -> Vec<Device> {
        (0..n)
            .map(|i| {
                Device::new(
                    format!("cn{i:02}"),
                    DeviceKind::ComputeNode {
                        cores,
                        memory_gib: mem_gib,
                    },
                )
            })
            .collect()
    }

    /// `n` CXL memory appliances of `capacity_mib` each.
    pub fn memory_appliances(n: usize, capacity_mib: u64) -> Vec<Device> {
        (0..n)
            .map(|i| Device::new(format!("mem{i:02}"), DeviceKind::MemoryAppliance { capacity_mib }))
            .collect()
    }

    /// `n` pooled GPUs.
    pub fn gpus(n: usize, model: &str, memory_gib: u64) -> Vec<Device> {
        (0..n)
            .map(|i| {
                Device::new(
                    format!("gpu{i:02}"),
                    DeviceKind::Gpu {
                        model: model.to_string(),
                        memory_gib,
                    },
                )
            })
            .collect()
    }

    /// `n` NVMe-oF subsystems of `capacity_bytes` each.
    pub fn nvme_subsystems(n: usize, capacity_bytes: u64) -> Vec<Device> {
        (0..n)
            .map(|i| Device::new(format!("nvme{i:02}"), DeviceKind::NvmeSubsystem { capacity_bytes }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn star_attaches_all_devices() {
        let t = TopologyBuilder::new().star(compute_nodes(4, 56, 128));
        assert_eq!(t.switches.len(), 1);
        assert_eq!(t.endpoints.len(), 4);
        assert_eq!(t.links.len(), 4);
        assert_eq!(t.initiator_endpoints().len(), 4);
        assert!(t.target_endpoints().is_empty());
    }

    #[test]
    fn leaf_spine_wiring() {
        let mut devs = compute_nodes(4, 56, 128);
        devs.extend(memory_appliances(2, 1 << 20));
        let t = TopologyBuilder::new().leaf_spine(2, 3, devs);
        assert_eq!(t.switches.len(), 5);
        // trunks: 3 leaves x 2 spines, plus 6 access links
        assert_eq!(t.links.len(), 6 + 6);
        assert_eq!(t.target_endpoints().len(), 2);
    }

    #[test]
    fn ring_has_n_trunks() {
        let t = TopologyBuilder::new().ring(5, gpus(3, "A100", 40));
        let trunks = t
            .links
            .iter()
            .filter(|l| matches!((l.a, l.b), (Attach::Switch(_), Attach::Switch(_))))
            .count();
        assert_eq!(trunks, 5);
    }

    #[test]
    fn cascade_wiring() {
        let mut devs = compute_nodes(2, 56, 128);
        devs.extend(gpus(6, "A100", 40));
        let t = TopologyBuilder::new().cascade(3, devs);
        // head + 3 appliance switches
        assert_eq!(t.switches.len(), 4);
        // 3 uplinks + 2 chain trunks + 8 access links
        assert_eq!(t.links.len(), 3 + 2 + 8);
        assert_eq!(t.initiator_endpoints().len(), 2);
        assert_eq!(t.target_endpoints().len(), 6);
        // Initiators attach to the head switch; targets never do.
        for ep in t.initiator_endpoints() {
            let at = Attach::Endpoint(ep);
            let (_, link) = t.incident_links(at).next().unwrap();
            let far = if link.a == at { link.b } else { link.a };
            assert_eq!(far, Attach::Switch(SwitchId(0)));
        }
        for ep in t.target_endpoints() {
            let at = Attach::Endpoint(ep);
            let (_, link) = t.incident_links(at).next().unwrap();
            let far = if link.a == at { link.b } else { link.a };
            assert_ne!(far, Attach::Switch(SwitchId(0)));
        }
    }

    #[test]
    fn incident_links_skip_unhealthy() {
        let mut t = TopologyBuilder::new().star(compute_nodes(2, 8, 16));
        let sw = Attach::Switch(SwitchId(0));
        assert_eq!(t.incident_links(sw).count(), 2);
        t.links[0].healthy = false;
        assert_eq!(t.incident_links(sw).count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = TopologyBuilder::new().ring(2, vec![]);
    }
}
