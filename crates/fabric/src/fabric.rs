//! The [`FabricSim`] facade: what an OFMF Agent programs against.
//!
//! This is the simulated stand-in for a vendor fabric manager. It owns one
//! topology plus its zoning/connection tables, applies faults, performs
//! automatic connection fail-over, and surfaces everything that happened as
//! a drainable [`FabricEvent`] stream — the raw material an Agent translates
//! into Redfish events.

use crate::device::{Device, DeviceError};
use crate::failure::{apply, Fault};
use crate::ids::{ConnectionId, DeviceId, EndpointId, LinkId, SwitchId, ZoneId};
use crate::routing::{path_healthy, route, route_filtered, route_widest, Path};
use crate::telemetry::{Sample, Sampler};
use crate::topology::Topology;
use crate::zoning::{ConnectionState, ZoneState, ZoningError, ZoningTable};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Fabric technology and identity configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Name used for the Redfish fabric id (e.g. `CXL0`).
    pub name: String,
    /// Technology string matching `redfish_model::enums::Protocol` variants.
    pub technology: String,
    /// Telemetry seed.
    pub seed: u64,
}

impl FabricConfig {
    /// Convenience constructor.
    pub fn new(name: &str, technology: &str, seed: u64) -> Self {
        FabricConfig {
            name: name.to_string(),
            technology: technology.to_string(),
            seed,
        }
    }
}

/// Everything observable that happens inside a fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricEvent {
    /// A link changed health.
    LinkHealth {
        /// Which link.
        link: LinkId,
        /// New health.
        healthy: bool,
    },
    /// A switch changed health.
    SwitchHealth {
        /// Which switch.
        switch: SwitchId,
        /// New health.
        healthy: bool,
    },
    /// A device changed health.
    DeviceHealth {
        /// Which device.
        device: DeviceId,
        /// New health.
        healthy: bool,
    },
    /// A connection was transparently re-routed after a fault.
    ConnectionFailedOver {
        /// Which connection.
        connection: ConnectionId,
        /// Hop count of the replacement path.
        new_hops: usize,
    },
    /// A connection lost all paths and was torn down.
    ConnectionLost {
        /// Which connection.
        connection: ConnectionId,
    },
    /// A zone was created.
    ZoneCreated {
        /// Which zone.
        zone: ZoneId,
    },
    /// A connection was established.
    Connected {
        /// Which connection.
        connection: ConnectionId,
    },
    /// A connection was torn down by request.
    Disconnected {
        /// Which connection.
        connection: ConnectionId,
    },
}

/// Errors from fabric-manager operations.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// Zoning/connection table error.
    Zoning(ZoningError),
    /// Device capacity error.
    Device(DeviceError),
    /// No healthy route between the endpoints.
    Unroutable {
        /// Initiator endpoint.
        from: EndpointId,
        /// Target endpoint.
        to: EndpointId,
    },
    /// Endpoint id out of range.
    UnknownEndpoint(EndpointId),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Zoning(e) => write!(f, "zoning: {e}"),
            FabricError::Device(e) => write!(f, "device: {e}"),
            FabricError::Unroutable { from, to } => write!(f, "no healthy route {from} → {to}"),
            FabricError::UnknownEndpoint(e) => write!(f, "unknown endpoint {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<ZoningError> for FabricError {
    fn from(e: ZoningError) -> Self {
        FabricError::Zoning(e)
    }
}

impl From<DeviceError> for FabricError {
    fn from(e: DeviceError) -> Self {
        FabricError::Device(e)
    }
}

/// One simulated fabric: topology + zoning + telemetry + event stream.
#[derive(Debug)]
pub struct FabricSim {
    /// Identity/technology configuration.
    pub config: FabricConfig,
    topo: Topology,
    zoning: ZoningTable,
    sampler: Sampler,
    events: Vec<FabricEvent>,
    /// Bandwidth reserved per link (Gbit/s), indexed by `LinkId`.
    reserved: Vec<f64>,
    /// Monotonic topology generation: bumped whenever links, routes or
    /// reservations change. Placement probe caches key on this, so a quiet
    /// fabric is never re-probed while a changed one invalidates itself.
    generation: u64,
}

/// What a placement probe learns about one candidate route.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteProbe {
    /// The widest-shortest route currently available.
    pub path: Path,
    /// Bottleneck *unreserved* bandwidth along that route (Gbit/s) — the
    /// congestion signal. `f64::INFINITY` for zero-hop (same-endpoint) routes.
    pub min_residual_gbps: f64,
    /// How many live connections share at least one link with this route —
    /// a proxy for how much established traffic a new binding here would
    /// contend with (and how many workloads a fault on this route hits).
    pub blast_radius: usize,
}

impl FabricSim {
    /// Wrap a topology as a managed fabric.
    pub fn new(config: FabricConfig, topo: Topology) -> Self {
        let sampler = Sampler::new(config.seed);
        let reserved = vec![0.0; topo.links.len()];
        FabricSim {
            config,
            topo,
            zoning: ZoningTable::new(),
            sampler,
            events: Vec::new(),
            reserved,
            generation: 0,
        }
    }

    /// Current topology generation (see [`RouteProbe`]): changes whenever a
    /// link, route or bandwidth reservation changes.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bandwidth currently reserved on a link (Gbit/s).
    pub fn reserved_gbps(&self, link: crate::ids::LinkId) -> f64 {
        self.reserved.get(link.index()).copied().unwrap_or(0.0)
    }

    /// Unreserved bandwidth remaining on a link (Gbit/s).
    pub fn residual_gbps(&self, link: crate::ids::LinkId) -> f64 {
        let cap = self.topo.links[link.index()].bandwidth_gbps;
        (cap - self.reserved_gbps(link)).max(0.0)
    }

    fn reserve_path(&mut self, path: &Path, gbps: f64) {
        for l in &path.links {
            self.reserved[l.index()] += gbps;
        }
    }

    fn release_path(&mut self, path: &Path, gbps: f64) {
        for l in &path.links {
            let r = &mut self.reserved[l.index()];
            *r = (*r - gbps).max(0.0);
        }
    }

    /// Read-only topology access (discovery).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Endpoint id by device name (agents address devices by name).
    pub fn endpoint_by_device_name(&self, name: &str) -> Option<EndpointId> {
        (0..self.topo.endpoints.len() as u32)
            .map(EndpointId)
            .find(|e| self.topo.device_of(*e).name == name)
    }

    /// Create a zone over the given endpoints.
    pub fn create_zone(&mut self, name: &str, members: BTreeSet<EndpointId>) -> Result<ZoneId, FabricError> {
        for &ep in &members {
            if ep.index() >= self.topo.endpoints.len() {
                return Err(FabricError::UnknownEndpoint(ep));
            }
        }
        let id = self.zoning.create_zone(name, members);
        self.events.push(FabricEvent::ZoneCreated { zone: id });
        Ok(id)
    }

    /// Add an endpoint to a zone.
    pub fn add_to_zone(&mut self, zone: ZoneId, ep: EndpointId) -> Result<(), FabricError> {
        if ep.index() >= self.topo.endpoints.len() {
            return Err(FabricError::UnknownEndpoint(ep));
        }
        self.zoning.add_to_zone(zone, ep)?;
        Ok(())
    }

    /// Delete a zone (must have no live connections).
    pub fn delete_zone(&mut self, zone: ZoneId) -> Result<(), FabricError> {
        self.zoning.delete_zone(zone)?;
        Ok(())
    }

    /// Zone state access.
    pub fn zone(&self, zone: ZoneId) -> Result<&ZoneState, FabricError> {
        Ok(self.zoning.zone(zone)?)
    }

    /// Establish a best-effort connection (no bandwidth reservation).
    pub fn connect(
        &mut self,
        name: &str,
        zone: ZoneId,
        initiator: EndpointId,
        target: EndpointId,
        size: u64,
    ) -> Result<ConnectionId, FabricError> {
        self.connect_qos(name, zone, initiator, target, size, 0.0)
    }

    /// Establish a connection reserving `reserve_gbps` of bandwidth on every
    /// link of the chosen path: allocate `size` units on the target's
    /// device, route over links with enough *unreserved* capacity, reserve,
    /// and record the binding. Rolls everything back on failure.
    pub fn connect_qos(
        &mut self,
        name: &str,
        zone: ZoneId,
        initiator: EndpointId,
        target: EndpointId,
        size: u64,
        reserve_gbps: f64,
    ) -> Result<ConnectionId, FabricError> {
        let reserved = &self.reserved;
        let path = route_filtered(&self.topo, initiator, target, |lid, edge| {
            edge.bandwidth_gbps - reserved[lid.index()] >= reserve_gbps
        })
        .ok_or(FabricError::Unroutable {
            from: initiator,
            to: target,
        })?;
        let allocation = self.topo.device_of_mut(target).allocate(size)?;
        match self.zoning.connect(
            name,
            zone,
            initiator,
            target,
            allocation,
            size,
            path.clone(),
            reserve_gbps,
        ) {
            Ok(id) => {
                self.reserve_path(&path, reserve_gbps);
                self.generation += 1;
                self.events.push(FabricEvent::Connected { connection: id });
                Ok(id)
            }
            Err(e) => {
                // Roll back the carve so failed connects don't leak capacity.
                let _ = self.topo.device_of_mut(target).release(allocation);
                Err(e.into())
            }
        }
    }

    /// Tear down a connection, releasing its device allocation and any
    /// bandwidth reservation.
    pub fn disconnect(&mut self, id: ConnectionId) -> Result<(), FabricError> {
        let st = self.zoning.disconnect(id)?;
        let _ = self.topo.device_of_mut(st.target).release(st.allocation);
        self.release_path(&st.path, st.reserved_gbps);
        self.generation += 1;
        self.events.push(FabricEvent::Disconnected { connection: id });
        Ok(())
    }

    /// Connection state access.
    pub fn connection(&self, id: ConnectionId) -> Result<&ConnectionState, FabricError> {
        Ok(self.zoning.connection(id)?)
    }

    /// All live connections.
    pub fn connections(&self) -> Vec<(ConnectionId, EndpointId, EndpointId)> {
        self.zoning
            .connections()
            .map(|(id, c)| (id, c.initiator, c.target))
            .collect()
    }

    /// Inject a fault, then fail over (or tear down) affected connections.
    /// Returns how many connections failed over and how many were lost.
    pub fn inject(&mut self, fault: Fault) -> (usize, usize) {
        if !apply(&mut self.topo, fault) {
            return (0, 0);
        }
        self.generation += 1;
        self.events.push(match fault {
            Fault::LinkDown(l) => FabricEvent::LinkHealth {
                link: l,
                healthy: false,
            },
            Fault::LinkUp(l) => FabricEvent::LinkHealth { link: l, healthy: true },
            Fault::SwitchDown(s) => FabricEvent::SwitchHealth {
                switch: s,
                healthy: false,
            },
            Fault::SwitchUp(s) => FabricEvent::SwitchHealth {
                switch: s,
                healthy: true,
            },
            Fault::DeviceDown(d) => FabricEvent::DeviceHealth {
                device: d,
                healthy: false,
            },
            Fault::DeviceUp(d) => FabricEvent::DeviceHealth {
                device: d,
                healthy: true,
            },
        });
        self.reroute_all()
    }

    /// Re-validate every connection's path; re-route broken ones, tear down
    /// unroutable ones. Returns `(failed_over, lost)` counts.
    fn reroute_all(&mut self) -> (usize, usize) {
        let ids: Vec<ConnectionId> = self.zoning.connections().map(|(id, _)| id).collect();
        let mut failed_over = 0;
        let mut lost = Vec::new();
        for id in ids {
            let (initiator, target, qos, old_path, ok) = {
                let c = self.zoning.connection(id).expect("listed connection exists");
                (
                    c.initiator,
                    c.target,
                    c.reserved_gbps,
                    c.path.clone(),
                    path_healthy(&self.topo, &c.path, c.initiator),
                )
            };
            if ok {
                continue;
            }
            // Free the broken path's reservation before searching, so the
            // replacement may legally reuse surviving links of the old path.
            self.release_path(&old_path, qos);
            let reserved = &self.reserved;
            let found = route_filtered(&self.topo, initiator, target, |lid, edge| {
                edge.bandwidth_gbps - reserved[lid.index()] >= qos
            });
            match found {
                Some(new_path) => {
                    let hops = new_path.hops();
                    self.reserve_path(&new_path, qos);
                    let c = self.zoning.connection_mut(id).expect("exists");
                    c.path = new_path;
                    c.failover_count += 1;
                    failed_over += 1;
                    self.events.push(FabricEvent::ConnectionFailedOver {
                        connection: id,
                        new_hops: hops,
                    });
                }
                None => lost.push(id),
            }
        }
        for id in &lost {
            if let Ok(st) = self.zoning.disconnect(*id) {
                let _ = self.topo.device_of_mut(st.target).release(st.allocation);
                // Reservation was already released before the failed search.
            }
            self.events.push(FabricEvent::ConnectionLost { connection: *id });
        }
        (failed_over, lost.len())
    }

    /// Drain pending events (agents call this on their poll loop).
    pub fn drain_events(&mut self) -> Vec<FabricEvent> {
        std::mem::take(&mut self.events)
    }

    /// Take one telemetry sample of every entity.
    pub fn sample_telemetry(&mut self) -> Vec<Sample> {
        self.sampler.sample_all(&self.topo)
    }

    /// Route lookup without establishing a connection (used by
    /// topology-aware placement to score candidates).
    pub fn probe_route(&self, from: EndpointId, to: EndpointId) -> Option<Path> {
        route(&self.topo, from, to)
    }

    /// Congestion-aware route lookup: the widest-shortest route plus its
    /// bottleneck residual bandwidth and blast radius. This is what a
    /// batched `ProbeRoutes` agent op reports per candidate pair.
    pub fn probe_route_detailed(&self, from: EndpointId, to: EndpointId) -> Option<RouteProbe> {
        if from.index() >= self.topo.endpoints.len() || to.index() >= self.topo.endpoints.len() {
            return None;
        }
        let path = route_widest(&self.topo, from, to, |l| self.residual_gbps(l))?;
        let min_residual_gbps = path
            .links
            .iter()
            .map(|l| self.residual_gbps(*l))
            .fold(f64::INFINITY, f64::min);
        let path_links: BTreeSet<LinkId> = path.links.iter().copied().collect();
        let blast_radius = self
            .zoning
            .connections()
            .filter(|(_, c)| c.path.links.iter().any(|l| path_links.contains(l)))
            .count();
        Some(RouteProbe {
            path,
            min_residual_gbps,
            blast_radius,
        })
    }

    /// Aggregate bandwidth the live connections would actually achieve if
    /// every link's capacity were shared fairly among the connections
    /// crossing it: each connection gets `min` over its links of
    /// `capacity / crossing-flows`. This is the placement-quality metric the
    /// contention benchmarks compare — better placement spreads flows, so
    /// fewer share a bottleneck and the sum is higher.
    pub fn aggregate_effective_gbps(&self) -> f64 {
        let mut flows = vec![0usize; self.topo.links.len()];
        for (_, c) in self.zoning.connections() {
            for l in &c.path.links {
                flows[l.index()] += 1;
            }
        }
        let mut total = 0.0;
        for (_, c) in self.zoning.connections() {
            let eff = c
                .path
                .links
                .iter()
                .map(|l| self.topo.links[l.index()].bandwidth_gbps / flows[l.index()] as f64)
                .fold(f64::INFINITY, f64::min);
            if eff.is_finite() {
                total += eff;
            }
        }
        total
    }

    /// Free capacity of the device behind `ep`.
    pub fn free_capacity(&self, ep: EndpointId) -> u64 {
        self.topo.device_of(ep).free_capacity()
    }

    /// Device behind an endpoint (discovery).
    pub fn device(&self, ep: EndpointId) -> &Device {
        self.topo.device_of(ep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{presets, TopologyBuilder};

    fn sim() -> FabricSim {
        let mut devs = presets::compute_nodes(2, 8, 16);
        devs.extend(presets::memory_appliances(1, 1024));
        let topo = TopologyBuilder::new().leaf_spine(2, 2, devs);
        FabricSim::new(FabricConfig::new("CXL0", "CXL", 7), topo)
    }

    fn zone_all(s: &mut FabricSim) -> ZoneId {
        let members: BTreeSet<EndpointId> = (0..s.topology().endpoints.len() as u32).map(EndpointId).collect();
        s.create_zone("all", members).unwrap()
    }

    #[test]
    fn connect_allocates_and_disconnect_releases() {
        let mut s = sim();
        let z = zone_all(&mut s);
        let cn = s.topology().initiator_endpoints()[0];
        let mem = s.topology().target_endpoints()[0];
        assert_eq!(s.free_capacity(mem), 1024);
        let c = s.connect("c1", z, cn, mem, 512).unwrap();
        assert_eq!(s.free_capacity(mem), 512);
        s.disconnect(c).unwrap();
        assert_eq!(s.free_capacity(mem), 1024);
    }

    #[test]
    fn failed_connect_rolls_back_allocation() {
        let mut s = sim();
        let cn = s.topology().initiator_endpoints()[0];
        let mem = s.topology().target_endpoints()[0];
        // Zone without the initiator => zoning error after allocation.
        let z = s.create_zone("partial", [mem].into_iter().collect()).unwrap();
        assert!(s.connect("c1", z, cn, mem, 512).is_err());
        assert_eq!(s.free_capacity(mem), 1024, "allocation must be rolled back");
    }

    #[test]
    fn overcommit_rejected() {
        let mut s = sim();
        let z = zone_all(&mut s);
        let cn = s.topology().initiator_endpoints()[0];
        let mem = s.topology().target_endpoints()[0];
        s.connect("c1", z, cn, mem, 1000).unwrap();
        assert!(matches!(
            s.connect("c2", z, cn, mem, 100),
            Err(FabricError::Device(DeviceError::Insufficient { .. }))
        ));
    }

    #[test]
    fn spine_failure_fails_over_connection() {
        let mut s = sim();
        let z = zone_all(&mut s);
        // cn01 sits on leaf1, mem00 on leaf0: the path must cross a spine.
        let cn = s.topology().initiator_endpoints()[1];
        let mem = s.topology().target_endpoints()[0];
        let c = s.connect("c1", z, cn, mem, 64).unwrap();
        s.drain_events();
        // Kill both spines one at a time; first kill may or may not hit the
        // programmed path, second kill must lose the connection.
        let (fo0, lost0) = s.inject(Fault::SwitchDown(SwitchId(0)));
        let (fo1, lost1) = s.inject(Fault::SwitchDown(SwitchId(1)));
        assert!(fo0 + fo1 + lost0 + lost1 > 0);
        assert_eq!(lost0 + lost1, 1, "connection lost after both spines die");
        assert!(s.connection(c).is_err());
        // Capacity released on loss.
        assert_eq!(s.free_capacity(mem), 1024);
        let events = s.drain_events();
        assert!(events.iter().any(|e| matches!(e, FabricEvent::ConnectionLost { .. })));
    }

    #[test]
    fn events_drain_once() {
        let mut s = sim();
        let _ = zone_all(&mut s);
        assert!(!s.drain_events().is_empty());
        assert!(s.drain_events().is_empty());
    }

    #[test]
    fn endpoint_lookup_by_name() {
        let s = sim();
        assert!(s.endpoint_by_device_name("cn00").is_some());
        assert!(s.endpoint_by_device_name("mem00").is_some());
        assert!(s.endpoint_by_device_name("nope").is_none());
    }

    #[test]
    fn generation_tracks_topology_and_reservation_changes() {
        let mut s = sim();
        let g0 = s.generation();
        let z = zone_all(&mut s);
        assert_eq!(s.generation(), g0, "zoning alone does not move routes");
        let cn = s.topology().initiator_endpoints()[0];
        let mem = s.topology().target_endpoints()[0];
        let c = s.connect("c1", z, cn, mem, 64).unwrap();
        let g1 = s.generation();
        assert!(g1 > g0, "connect bumps the generation");
        s.disconnect(c).unwrap();
        let g2 = s.generation();
        assert!(g2 > g1, "disconnect bumps the generation");
        s.inject(Fault::SwitchDown(SwitchId(0)));
        assert!(s.generation() > g2, "faults bump the generation");
        // An ignored fault (unknown entity) is generation-neutral.
        let g3 = s.generation();
        s.inject(Fault::SwitchDown(SwitchId(99)));
        assert_eq!(s.generation(), g3);
    }

    #[test]
    fn detailed_probe_reports_residual_and_blast_radius() {
        let mut s = sim();
        let z = zone_all(&mut s);
        // cn01 (leaf1) -> mem00 (leaf0) crosses access + trunk links.
        let cn = s.topology().initiator_endpoints()[1];
        let mem = s.topology().target_endpoints()[0];
        let before = s.probe_route_detailed(cn, mem).expect("routable");
        assert!(before.min_residual_gbps >= 100.0);
        assert_eq!(before.blast_radius, 0, "no live connections yet");
        // Reserve bandwidth on that route and re-probe: the residual must
        // drop on the shared access link and the connection must show up in
        // the blast radius.
        s.connect_qos("c1", z, cn, mem, 64, 40.0).unwrap();
        let after = s.probe_route_detailed(cn, mem).expect("still routable");
        assert!(
            after.min_residual_gbps <= before.min_residual_gbps - 40.0 + 1e-9,
            "residual must reflect the reservation: {} vs {}",
            after.min_residual_gbps,
            before.min_residual_gbps
        );
        assert_eq!(after.blast_radius, 1);
        // Out-of-range endpoints probe as None instead of panicking.
        assert!(s.probe_route_detailed(EndpointId(999), mem).is_none());
    }

    #[test]
    fn aggregate_effective_bandwidth_prefers_spread_flows() {
        // Two connections on the same appliance share its access link and
        // halve each other; spread across two appliances they don't.
        let mut devs = presets::compute_nodes(2, 8, 16);
        devs.extend(presets::memory_appliances(2, 1024));
        let topo = TopologyBuilder::new().leaf_spine(2, 2, devs);
        let mut packed = FabricSim::new(FabricConfig::new("CXL0", "CXL", 7), topo.clone());
        let z = zone_all(&mut packed);
        let cns = packed.topology().initiator_endpoints();
        let mems = packed.topology().target_endpoints();
        packed.connect("c1", z, cns[0], mems[0], 64).unwrap();
        packed.connect("c2", z, cns[1], mems[0], 64).unwrap();
        let mut spread = FabricSim::new(FabricConfig::new("CXL0", "CXL", 7), topo);
        let z = zone_all(&mut spread);
        spread.connect("c1", z, cns[0], mems[0], 64).unwrap();
        spread.connect("c2", z, cns[1], mems[1], 64).unwrap();
        assert!(
            spread.aggregate_effective_gbps() > packed.aggregate_effective_gbps(),
            "spread {} must beat packed {}",
            spread.aggregate_effective_gbps(),
            packed.aggregate_effective_gbps()
        );
    }

    #[test]
    fn unroutable_connect_fails_cleanly() {
        let mut s = sim();
        let z = zone_all(&mut s);
        let cn = s.topology().initiator_endpoints()[0];
        let mem = s.topology().target_endpoints()[0];
        // Sever the memory appliance's access link first.
        let dev = s.topology().endpoints[mem.index()].device;
        s.inject(Fault::DeviceDown(dev));
        assert!(matches!(
            s.connect("c1", z, cn, mem, 64),
            Err(FabricError::Unroutable { .. })
        ));
        assert_eq!(s.free_capacity(mem), 1024);
    }
}
