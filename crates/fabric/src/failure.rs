//! Fault injection: the failures the OFMF must surface and survive.
//!
//! Failures mutate the topology's health flags; [`crate::fabric::FabricSim`]
//! turns each into a [`crate::fabric::FabricEvent`] and re-routes affected
//! connections ("dynamic network fail-over" per the abstract).

use crate::ids::{DeviceId, LinkId, SwitchId};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// A fault (or repair) applied to the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// A link went down.
    LinkDown(LinkId),
    /// A link came back.
    LinkUp(LinkId),
    /// A switch died (all its links effectively dead).
    SwitchDown(SwitchId),
    /// A switch recovered.
    SwitchUp(SwitchId),
    /// A device died (its endpoint unreachable).
    DeviceDown(DeviceId),
    /// A device recovered.
    DeviceUp(DeviceId),
}

/// Apply a fault to the topology. Returns `false` if the referenced entity
/// does not exist (out-of-range injection is ignored, not fatal — mirrors a
/// fabric manager receiving a trap for an unknown port).
pub fn apply(topo: &mut Topology, fault: Fault) -> bool {
    match fault {
        Fault::LinkDown(l) => set_link(topo, l, false),
        Fault::LinkUp(l) => set_link(topo, l, true),
        Fault::SwitchDown(s) => set_switch(topo, s, false),
        Fault::SwitchUp(s) => set_switch(topo, s, true),
        Fault::DeviceDown(d) => set_device(topo, d, false),
        Fault::DeviceUp(d) => set_device(topo, d, true),
    }
}

fn set_link(topo: &mut Topology, l: LinkId, healthy: bool) -> bool {
    match topo.links.get_mut(l.index()) {
        Some(e) => {
            e.healthy = healthy;
            true
        }
        None => false,
    }
}

fn set_switch(topo: &mut Topology, s: SwitchId, healthy: bool) -> bool {
    match topo.switches.get_mut(s.index()) {
        Some(n) => {
            n.healthy = healthy;
            true
        }
        None => false,
    }
}

fn set_device(topo: &mut Topology, d: DeviceId, healthy: bool) -> bool {
    match topo.devices.get_mut(d.index()) {
        Some(n) => {
            n.healthy = healthy;
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{presets, TopologyBuilder};

    #[test]
    fn apply_and_repair() {
        let mut t = TopologyBuilder::new().star(presets::compute_nodes(2, 8, 16));
        assert!(apply(&mut t, Fault::LinkDown(LinkId(0))));
        assert!(!t.links[0].healthy);
        assert!(apply(&mut t, Fault::LinkUp(LinkId(0))));
        assert!(t.links[0].healthy);
        assert!(apply(&mut t, Fault::SwitchDown(SwitchId(0))));
        assert!(!t.switches[0].healthy);
        assert!(apply(&mut t, Fault::DeviceDown(DeviceId(1))));
        assert!(!t.devices[1].healthy);
    }

    #[test]
    fn unknown_entities_are_ignored() {
        let mut t = TopologyBuilder::new().star(presets::compute_nodes(1, 8, 16));
        assert!(!apply(&mut t, Fault::LinkDown(LinkId(999))));
        assert!(!apply(&mut t, Fault::SwitchDown(SwitchId(999))));
        assert!(!apply(&mut t, Fault::DeviceDown(DeviceId(999))));
    }
}
