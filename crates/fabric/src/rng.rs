//! Deterministic stream derivation.
//!
//! Every stochastic component in the simulator takes an explicit seed; a
//! stream for `(seed, label, index)` is derived with a split-mix finalizer
//! so that parallel and serial execution orders produce identical results.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(seed, label, index)`.
pub fn derive_seed(seed: u64, label: &str, index: u64) -> u64 {
    let mut h = splitmix64(seed);
    for b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    splitmix64(h ^ index)
}

/// A seeded RNG for the derived stream.
pub fn stream(seed: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let a: f64 = stream(7, "x", 0).gen();
        let b: f64 = stream(7, "x", 0).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_by_label_and_index() {
        let a: u64 = stream(7, "x", 0).gen();
        let b: u64 = stream(7, "y", 0).gen();
        let c: u64 = stream(7, "x", 1).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_avalanches() {
        // Flipping one bit of the seed should change many output bits.
        let a = derive_seed(0, "t", 0);
        let b = derive_seed(1, "t", 0);
        assert!((a ^ b).count_ones() > 16);
    }
}
