//! The OFMF telemetry service: metric ingestion, windowed aggregation,
//! report generation and threshold alerting.
//!
//! Agents push raw samples; the service keeps a bounded window per
//! `(metric, origin)` series, materializes `MetricReport` resources into the
//! tree on demand (or on a cadence driven by the caller), and raises
//! `MetricReport`/`Alert` events when thresholds trip.
//!
//! # Ingest at scale
//!
//! The series store is lock-striped: metric ids hash (FNV-1a, the same
//! function the sharded registry uses) to one of N shards, each an
//! independent `RwLock` over a two-level `metric → origin → Series` map.
//! Concurrent ingesting threads carrying different metrics proceed without
//! contending; [`TelemetryService::with_shards`]`(1)` reproduces the old
//! single-lock behavior for A/B benchmarking. Metric ids are interned
//! `Arc<str>` end-to-end (agents sample them as `Arc<str>`), so a sample's
//! journey from agent to series costs refcount bumps, not `String` +
//! `ODataId` clones. Threshold rules are pre-grouped by metric id, so the
//! per-sample check is one hash lookup instead of a scan of every rule.

use crate::agent::AgentMetric;
use crate::clock::Clock;
use crate::events::EventService;
use ofmf_obs::Counter;
use parking_lot::RwLock;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::events::EventType;
use redfish_model::resources::telemetry::{MetricReport, MetricValue};
use redfish_model::resources::Resource;
use redfish_model::{RedfishResult, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Samples kept per series.
pub const WINDOW: usize = 128;

/// Default number of lock stripes in the series store.
pub const DEFAULT_SHARDS: usize = 16;

/// A threshold rule: alert when `metric` at any origin crosses `limit`.
#[derive(Debug, Clone)]
pub struct Threshold {
    /// Metric name to watch.
    pub metric_id: String,
    /// Upper limit; a sample strictly above it trips the rule.
    pub upper: f64,
    /// Severity attached to the alert.
    pub severity: String,
}

struct TelemetryMetrics {
    /// `ofmf.telemetry.ingest.samples.total`
    samples: Arc<Counter>,
    /// `ofmf.telemetry.shard.contention` — ingest calls that found their
    /// shard's lock held and had to wait.
    contention: Arc<Counter>,
}

fn telemetry_metrics() -> &'static TelemetryMetrics {
    static METRICS: OnceLock<TelemetryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TelemetryMetrics {
        samples: ofmf_obs::counter("ofmf.telemetry.ingest.samples.total"),
        contention: ofmf_obs::counter("ofmf.telemetry.shard.contention"),
    })
}

#[derive(Debug, Default)]
struct Series {
    samples: VecDeque<(u64, f64)>,
}

impl Series {
    fn push(&mut self, t: u64, v: f64) {
        if self.samples.len() == WINDOW {
            self.samples.pop_front();
        }
        self.samples.push_back((t, v));
    }

    fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, v)| v).sum::<f64>() / self.samples.len() as f64
    }

    /// Window minimum; `None` for an empty window (never ±infinity).
    fn min(&self) -> Option<f64> {
        self.samples.iter().map(|(_, v)| *v).reduce(f64::min)
    }

    /// Window maximum; `None` for an empty window (never ±infinity).
    fn max(&self) -> Option<f64> {
        self.samples.iter().map(|(_, v)| *v).reduce(f64::max)
    }

    fn last(&self) -> Option<(u64, f64)> {
        self.samples.back().copied()
    }
}

/// Which window statistic a report definition collects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Most recent sample.
    Latest,
    /// Window average.
    Average,
    /// Window minimum.
    Minimum,
    /// Window maximum.
    Maximum,
}

impl Aggregate {
    fn label(self) -> &'static str {
        match self {
            Aggregate::Latest => "Latest",
            Aggregate::Average => "Average",
            Aggregate::Minimum => "Minimum",
            Aggregate::Maximum => "Maximum",
        }
    }
}

/// A report definition: which metric to collect, how to aggregate it, and
/// the Redfish `MetricReportDefinition` id it materializes under.
#[derive(Debug, Clone)]
pub struct ReportDefinition {
    /// Definition member id.
    pub id: String,
    /// Metric name to include (every origin is reported).
    pub metric_id: String,
    /// Window statistic.
    pub aggregate: Aggregate,
}

/// One lock stripe: interned metric id → origin → series. The two-level
/// shape means one `Arc<str>` key per metric (not per `(metric, origin)`
/// pair) and metric-scoped scans (reports, thresholds) touch one entry.
type Shard = RwLock<HashMap<Arc<str>, HashMap<ODataId, Series>>>;

/// FNV-1a — the registry's shard hash, reused for metric ids.
fn metric_hash(metric: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in metric.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The telemetry service.
pub struct TelemetryService {
    clock: Arc<Clock>,
    shards: Box<[Shard]>,
    /// Threshold rules pre-grouped by metric id: the per-sample check is a
    /// single hash lookup, not a scan of every installed rule.
    thresholds: RwLock<HashMap<String, Vec<Threshold>>>,
    definitions: RwLock<Vec<ReportDefinition>>,
    next_report: AtomicU64,
}

impl TelemetryService {
    /// New service using `clock` for sample timestamps.
    pub fn new(clock: Arc<Clock>) -> Self {
        Self::with_shards_and_clock(DEFAULT_SHARDS, clock)
    }

    /// New service with an explicit stripe count. `with_shards(1)` is the
    /// compat escape hatch: it keeps the pre-striping ingest pipeline —
    /// one global lock, a freshly-cloned key per sample, a linear scan of
    /// every threshold rule — as the measured A/B baseline (the telemetry
    /// counterpart of [`EventService::with_linear_matching`]).
    pub fn with_shards(self, n: usize) -> Self {
        Self::with_shards_and_clock(n.max(1), self.clock)
    }

    fn with_shards_and_clock(n: usize, clock: Arc<Clock>) -> Self {
        TelemetryService {
            clock,
            shards: (0..n.max(1)).map(|_| Shard::default()).collect(),
            thresholds: RwLock::new(HashMap::new()),
            definitions: RwLock::new(Vec::new()),
            next_report: AtomicU64::new(1),
        }
    }

    fn shard_of(&self, metric: &str) -> &Shard {
        // ofmf-lint: allow(no-panic-path, "hash % shards.len() is always in bounds; shards is never empty")
        &self.shards[(metric_hash(metric) % self.shards.len() as u64) as usize]
    }

    /// Install a report definition. Reports for it are generated by
    /// [`TelemetryService::generate_defined_reports`].
    pub fn add_definition(&self, d: ReportDefinition) {
        self.definitions.write().push(d);
    }

    /// Generate one `MetricReport` per installed definition, each holding
    /// the defined aggregate of every origin tracked for that metric.
    /// Returns the report ids.
    pub fn generate_defined_reports(&self, reg: &Registry, events: &EventService) -> RedfishResult<Vec<ODataId>> {
        let defs = self.definitions.read().clone();
        let col = ODataId::new(top::METRIC_REPORTS);
        let mut out = Vec::with_capacity(defs.len());
        for d in defs {
            let seq = self.next_report.fetch_add(1, Ordering::AcqRel);
            let values: Vec<MetricValue> = {
                let shard = self.shard_of(&d.metric_id).read();
                let mut v: Vec<MetricValue> = shard
                    .get(d.metric_id.as_str())
                    .into_iter()
                    .flatten()
                    .filter_map(|(origin, s)| {
                        let (t, val) = match d.aggregate {
                            Aggregate::Latest => s.last()?,
                            Aggregate::Average => (self.clock.now_ms(), s.mean()),
                            Aggregate::Minimum => (self.clock.now_ms(), s.min()?),
                            Aggregate::Maximum => (self.clock.now_ms(), s.max()?),
                        };
                        Some(MetricValue {
                            metric_id: format!("{}:{}", d.metric_id, d.aggregate.label()),
                            metric_value: format!("{val}"),
                            metric_property: origin.as_str().to_string(),
                            timestamp_ms: t,
                        })
                    })
                    .collect();
                v.sort_by(|a, b| a.metric_property.cmp(&b.metric_property));
                v
            };
            let id = format!("{}-{seq}", d.id);
            let report = MetricReport::new(&col, &id, seq, values);
            let rid = col.child(&id);
            reg.create(&rid, report.to_value())?;
            events.publish(
                EventType::MetricReport,
                &rid,
                format!("defined report {id} ready"),
                "OK",
            );
            out.push(rid);
        }
        Ok(out)
    }

    /// Install a threshold rule.
    pub fn add_threshold(&self, t: Threshold) {
        self.thresholds.write().entry(t.metric_id.clone()).or_default().push(t);
    }

    /// Ingest a batch of agent samples. Threshold violations are published
    /// as `Alert` events on `events`. Returns the number of alerts raised.
    ///
    /// Samples are bucketed per shard so each stripe is locked exactly once
    /// per batch, however large the batch; batches carrying disjoint metrics
    /// ingest fully in parallel.
    pub fn ingest(&self, samples: &[AgentMetric], events: &EventService) -> usize {
        let metrics = telemetry_metrics();
        metrics.samples.add(samples.len() as u64);
        let now = self.clock.now_ms();
        if self.shards.len() == 1 {
            return self.ingest_compat(samples, events, now);
        }
        let mut buckets: Vec<Vec<&AgentMetric>> = vec![Vec::new(); self.shards.len()];
        for s in samples {
            // ofmf-lint: allow(no-panic-path, "hash % shards.len() is always in bounds; buckets has shards.len() slots")
            buckets[(metric_hash(&s.metric_id) % self.shards.len() as u64) as usize].push(s);
        }
        for (i, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                // ofmf-lint: allow(no-panic-path, "i enumerates a Vec sized to shards.len()")
                self.write_shard(&self.shards[i], bucket, now);
            }
        }
        let mut alerts = 0;
        let thresholds = self.thresholds.read();
        if thresholds.is_empty() {
            return 0;
        }
        for s in samples {
            let Some(rules) = thresholds.get(&*s.metric_id) else {
                continue;
            };
            for t in rules {
                if s.value > t.upper {
                    events.publish(
                        EventType::Alert,
                        &s.origin,
                        format!("{} = {:.2} exceeds limit {:.2}", s.metric_id, s.value, t.upper),
                        &t.severity,
                    );
                    alerts += 1;
                }
            }
        }
        alerts
    }

    /// The pre-striping ingest pipeline, selected by `with_shards(1)`:
    /// every sample allocates a fresh key into the (single) map — the old
    /// store was keyed by cloned `(String, ODataId)` pairs — and every
    /// sample is checked against every installed threshold rule. Observable
    /// behavior is identical to the striped path; only the cost profile
    /// differs, which is the point of keeping it.
    fn ingest_compat(&self, samples: &[AgentMetric], events: &EventService, now: u64) -> usize {
        {
            // ofmf-lint: allow(no-panic-path, "shards is constructed non-empty; compat mode means exactly one shard")
            let mut guard = self.shards[0].write();
            for s in samples {
                let key: Arc<str> = Arc::from(&*s.metric_id);
                guard
                    .entry(key)
                    .or_default()
                    .entry(s.origin.clone())
                    .or_default()
                    .push(now, s.value);
            }
        }
        let mut alerts = 0;
        let thresholds = self.thresholds.read();
        for s in samples {
            for t in thresholds.values().flatten() {
                if t.metric_id.as_str() == &*s.metric_id && s.value > t.upper {
                    events.publish(
                        EventType::Alert,
                        &s.origin,
                        format!("{} = {:.2} exceeds limit {:.2}", s.metric_id, s.value, t.upper),
                        &t.severity,
                    );
                    alerts += 1;
                }
            }
        }
        alerts
    }

    /// Push one bucket of samples under a single shard lock, counting the
    /// acquisition as contended if the stripe was already held.
    fn write_shard(&self, shard: &Shard, bucket: Vec<&AgentMetric>, now: u64) {
        let mut guard = match shard.try_write() {
            Some(g) => g,
            None => {
                telemetry_metrics().contention.inc();
                shard.write()
            }
        };
        for s in bucket {
            let by_origin = match guard.get_mut(&*s.metric_id) {
                Some(m) => m,
                // First sighting of this metric id: intern it (one Arc
                // refcount bump — the agent already holds it as Arc<str>).
                None => guard.entry(Arc::clone(&s.metric_id)).or_default(),
            };
            // Origins are few and stable per metric; clone only on first
            // sighting via the entry API.
            match by_origin.get_mut(&s.origin) {
                Some(series) => series.push(now, s.value),
                None => by_origin.entry(s.origin.clone()).or_default().push(now, s.value),
            }
        }
    }

    /// Number of distinct `(metric, origin)` series being tracked.
    pub fn series_count(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| sh.read().values().map(HashMap::len).sum::<usize>()) // ofmf-lint: allow(lock-discipline, "stripes are visited in ascending index order on every path")
            .sum()
    }

    /// Latest value of a series, if any.
    pub fn latest(&self, metric_id: &str, origin: &ODataId) -> Option<f64> {
        self.shard_of(metric_id)
            .read()
            .get(metric_id)
            .and_then(|m| m.get(origin))
            .and_then(|s| s.last())
            .map(|(_, v)| v)
    }

    /// Window mean of a series, if tracked.
    pub fn mean(&self, metric_id: &str, origin: &ODataId) -> Option<f64> {
        self.shard_of(metric_id)
            .read()
            .get(metric_id)
            .and_then(|m| m.get(origin))
            .map(Series::mean)
    }

    /// Materialize a `MetricReport` of every series' latest sample into the
    /// tree and announce it. Returns the report id.
    pub fn generate_report(&self, reg: &Registry, events: &EventService) -> RedfishResult<ODataId> {
        let seq = self.next_report.fetch_add(1, Ordering::AcqRel);
        let col = ODataId::new(top::METRIC_REPORTS);
        let id = format!("report{seq}");
        let mut values: Vec<MetricValue> = Vec::new();
        for sh in self.shards.iter() {
            let shard = sh.read();
            for (metric, by_origin) in shard.iter() {
                for (origin, s) in by_origin {
                    if let Some((t, val)) = s.last() {
                        values.push(MetricValue {
                            metric_id: metric.to_string(),
                            metric_value: format!("{val}"),
                            metric_property: origin.as_str().to_string(),
                            timestamp_ms: t,
                        });
                    }
                }
            }
        }
        values.sort_by(|a, b| {
            (a.metric_property.as_str(), a.metric_id.as_str()).cmp(&(b.metric_property.as_str(), b.metric_id.as_str()))
        });
        let report = MetricReport::new(&col, &id, seq, values);
        let rid = col.child(&id);
        reg.create(&rid, report.to_value())?;
        events.publish(EventType::MetricReport, &rid, format!("metric report {id} ready"), "OK");
        Ok(rid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bootstrap;

    fn setup() -> (Registry, EventService, TelemetryService, Arc<Clock>) {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let clock = Arc::new(Clock::manual());
        let ev = EventService::new(Arc::clone(&clock));
        let tel = TelemetryService::new(Arc::clone(&clock));
        (reg, ev, tel, clock)
    }

    fn metric(id: &str, origin: &str, value: f64) -> AgentMetric {
        AgentMetric {
            metric_id: id.into(),
            origin: ODataId::new(origin),
            value,
        }
    }

    #[test]
    fn ingest_tracks_series_and_means() {
        let (_reg, ev, tel, clock) = setup();
        tel.ingest(&[metric("Temp", "/redfish/v1/Chassis/c0", 50.0)], &ev);
        clock.advance_ms(10);
        tel.ingest(&[metric("Temp", "/redfish/v1/Chassis/c0", 70.0)], &ev);
        assert_eq!(tel.series_count(), 1);
        assert_eq!(tel.latest("Temp", &ODataId::new("/redfish/v1/Chassis/c0")), Some(70.0));
        assert_eq!(tel.mean("Temp", &ODataId::new("/redfish/v1/Chassis/c0")), Some(60.0));
    }

    #[test]
    fn single_shard_compat_behaves_identically() {
        let (_reg, ev, tel, _clock) = setup();
        let tel = tel.with_shards(1);
        tel.ingest(
            &[
                metric("Temp", "/redfish/v1/Chassis/c0", 50.0),
                metric("Power", "/redfish/v1/Chassis/c0", 120.0),
                metric("Temp", "/redfish/v1/Chassis/c1", 40.0),
            ],
            &ev,
        );
        assert_eq!(tel.series_count(), 3);
        assert_eq!(
            tel.latest("Power", &ODataId::new("/redfish/v1/Chassis/c0")),
            Some(120.0)
        );
    }

    #[test]
    fn threshold_raises_alert() {
        let (reg, ev, tel, _clock) = setup();
        let (_, rx) = ev
            .subscribe(&reg, "channel://c", vec![EventType::Alert], vec![])
            .unwrap();
        tel.add_threshold(Threshold {
            metric_id: "Temp".into(),
            upper: 80.0,
            severity: "Critical".into(),
        });
        let n = tel.ingest(&[metric("Temp", "/redfish/v1/Chassis/c0", 85.0)], &ev);
        assert_eq!(n, 1);
        let batch = rx.try_recv().unwrap();
        assert!(batch.events[0].message.contains("exceeds limit"));
        // Below threshold: no alert.
        assert_eq!(tel.ingest(&[metric("Temp", "/redfish/v1/Chassis/c0", 75.0)], &ev), 0);
        // A rule on a different metric never fires for Temp samples.
        tel.add_threshold(Threshold {
            metric_id: "Power".into(),
            upper: 0.0,
            severity: "Warning".into(),
        });
        assert_eq!(tel.ingest(&[metric("Temp", "/redfish/v1/Chassis/c0", 79.0)], &ev), 0);
    }

    #[test]
    fn report_materializes_into_tree() {
        let (reg, ev, tel, _clock) = setup();
        tel.ingest(
            &[
                metric("Temp", "/redfish/v1/Chassis/c0", 55.0),
                metric("PowerConsumedWatts", "/redfish/v1/Chassis/c0", 120.0),
            ],
            &ev,
        );
        let rid = tel.generate_report(&reg, &ev).unwrap();
        let body = reg.get(&rid).unwrap().body;
        assert_eq!(body["MetricValues"].as_array().unwrap().len(), 2);
        assert_eq!(body["ReportSequence"], 1);
        // Reports land in the collection.
        let members = reg.members(&ODataId::new(top::METRIC_REPORTS)).unwrap();
        assert_eq!(members, vec![rid]);
    }

    #[test]
    fn defined_reports_aggregate_per_metric() {
        let (reg, ev, tel, clock) = setup();
        tel.add_definition(ReportDefinition {
            id: "temp-max".into(),
            metric_id: "Temp".into(),
            aggregate: Aggregate::Maximum,
        });
        tel.add_definition(ReportDefinition {
            id: "temp-avg".into(),
            metric_id: "Temp".into(),
            aggregate: Aggregate::Average,
        });
        for v in [50.0, 70.0, 60.0] {
            tel.ingest(&[metric("Temp", "/redfish/v1/Chassis/c0", v)], &ev);
            clock.advance_ms(1);
        }
        // A different metric must not appear in the Temp reports.
        tel.ingest(&[metric("Power", "/redfish/v1/Chassis/c0", 120.0)], &ev);

        let reports = tel.generate_defined_reports(&reg, &ev).unwrap();
        assert_eq!(reports.len(), 2);
        let max_report = reg.get(&reports[0]).unwrap().body;
        assert_eq!(max_report["MetricValues"][0]["MetricId"], "Temp:Maximum");
        assert_eq!(max_report["MetricValues"][0]["MetricValue"], "70");
        let avg_report = reg.get(&reports[1]).unwrap().body;
        assert_eq!(avg_report["MetricValues"][0]["MetricId"], "Temp:Average");
        assert_eq!(avg_report["MetricValues"][0]["MetricValue"], "60");
        assert_eq!(
            avg_report["MetricValues"].as_array().unwrap().len(),
            1,
            "Power excluded"
        );
    }

    #[test]
    fn empty_series_yields_no_min_max_values() {
        // Regression: an empty window must produce no sample at all, not a
        // MetricValue of ±inf (which is unrepresentable in JSON).
        let s = Series::default();
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);

        let (reg, ev, tel, _clock) = setup();
        tel.add_definition(ReportDefinition {
            id: "temp-min".into(),
            metric_id: "Temp".into(),
            aggregate: Aggregate::Minimum,
        });
        tel.shard_of("Temp")
            .write()
            .entry(Arc::from("Temp"))
            .or_default()
            .insert(ODataId::new("/redfish/v1/Chassis/c0"), Series::default());
        let reports = tel.generate_defined_reports(&reg, &ev).unwrap();
        let body = reg.get(&reports[0]).unwrap().body;
        assert!(
            body["MetricValues"].as_array().unwrap().is_empty(),
            "empty window skipped"
        );
    }

    #[test]
    fn window_is_bounded() {
        let (_reg, ev, tel, _clock) = setup();
        for i in 0..(WINDOW + 50) {
            tel.ingest(&[metric("X", "/redfish/v1/a", i as f64)], &ev);
        }
        // Mean over the retained window only (the first 50 were evicted).
        let mean = tel.mean("X", &ODataId::new("/redfish/v1/a")).unwrap();
        let expect: f64 = (50..WINDOW + 50).map(|i| i as f64).sum::<f64>() / WINDOW as f64;
        assert!((mean - expect).abs() < 1e-9);
    }

    #[test]
    fn parallel_ingest_across_metrics_is_consistent() {
        let (_reg, ev, tel, _clock) = setup();
        let tel = Arc::new(tel);
        let ev = Arc::new(ev);
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let tel = Arc::clone(&tel);
                let ev = Arc::clone(&ev);
                std::thread::spawn(move || {
                    let samples: Vec<AgentMetric> = (0..100)
                        .map(|i| metric(&format!("M{t}"), "/redfish/v1/a", i as f64))
                        .collect();
                    tel.ingest(&samples, &ev);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tel.series_count(), 8);
        for t in 0..8 {
            assert_eq!(tel.latest(&format!("M{t}"), &ODataId::new("/redfish/v1/a")), Some(99.0));
        }
    }
}
