//! The OFMF task service: long-running operations as Redfish `Task`s.
//!
//! Composition requests and large zone changes are not instantaneous on a
//! real fabric, so the OFMF accepts them, returns `202 Accepted` with a task
//! monitor URI, and runs the work on a worker pool. Clients poll the task
//! resource (or subscribe to events) for completion.

use crate::clock::Clock;
use crate::events::EventService;
use parking_lot::Mutex;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::events::EventType;
use redfish_model::resources::task::{Task, TaskState};
use redfish_model::resources::Resource;
use redfish_model::{RedfishError, RedfishResult, Registry};
use serde_json::{json, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// The outcome a task body produces.
pub type TaskOutcome = Result<Value, String>;

struct TaskMetrics {
    /// `ofmf.tasks.inflight` — tasks created but not yet finished.
    inflight: Arc<ofmf_obs::Gauge>,
    /// `ofmf.tasks.age_ns` — creation-to-completion time.
    age: Arc<ofmf_obs::Histogram>,
    /// `ofmf.tasks.completed.total` / `ofmf.tasks.failed.total`
    completed: Arc<ofmf_obs::Counter>,
    failed: Arc<ofmf_obs::Counter>,
}

fn task_metrics() -> &'static TaskMetrics {
    static METRICS: OnceLock<TaskMetrics> = OnceLock::new();
    METRICS.get_or_init(|| TaskMetrics {
        inflight: ofmf_obs::gauge("ofmf.tasks.inflight"),
        age: ofmf_obs::histogram("ofmf.tasks.age_ns"),
        completed: ofmf_obs::counter("ofmf.tasks.completed.total"),
        failed: ofmf_obs::counter("ofmf.tasks.failed.total"),
    })
}

/// Record a task's terminal transition.
fn finish_task(created: std::time::Instant, ok: bool) {
    let m = task_metrics();
    m.inflight.sub(1);
    m.age.record_duration(created.elapsed());
    if ok {
        m.completed.inc();
    } else {
        m.failed.inc();
    }
}

/// The task service.
pub struct TaskService {
    #[allow(dead_code)]
    clock: Arc<Clock>,
    next_task: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl TaskService {
    /// New service.
    pub fn new(clock: Arc<Clock>) -> Self {
        TaskService {
            clock,
            next_task: AtomicU64::new(1),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Create a task resource in the tree and run `body` on a worker thread.
    /// Returns the task's id (its monitor URI). The task resource transitions
    /// `New → Running → Completed/Exception` and carries the body's payload
    /// or error message; a `StatusChange` event is published on completion.
    pub fn spawn<F>(
        &self,
        reg: &Arc<Registry>,
        events: &Arc<EventService>,
        name: &str,
        body: F,
    ) -> RedfishResult<ODataId>
    where
        F: FnOnce() -> TaskOutcome + Send + 'static,
    {
        let seq = self.next_task.fetch_add(1, Ordering::AcqRel);
        let col = ODataId::new(top::TASKS);
        let tid = seq.to_string();
        let task = Task::new(&col, &tid, name);
        let task_id = col.child(&tid);
        reg.create(&task_id, task.to_value())?;
        task_metrics().inflight.add(1);
        let created = std::time::Instant::now();

        let worker_reg = Arc::clone(reg);
        let worker_events = Arc::clone(events);
        let monitor = task_id.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("ofmf-task-{tid}"))
            .spawn(move || {
                let _ = worker_reg.patch(
                    &monitor,
                    &json!({"TaskState": TaskState::Running, "PercentComplete": 1}),
                    None,
                );
                let outcome = body();
                let patch = match outcome {
                    Ok(payload) => json!({
                        "TaskState": TaskState::Completed,
                        "PercentComplete": 100,
                        "Payload": payload,
                    }),
                    Err(msg) => json!({
                        "TaskState": TaskState::Exception,
                        "Messages": [msg],
                    }),
                };
                let ok = patch["TaskState"] == json!(TaskState::Completed);
                let _ = worker_reg.patch(&monitor, &patch, None);
                finish_task(created, ok);
                worker_events.publish(
                    EventType::StatusChange,
                    &monitor,
                    if ok { "task completed" } else { "task failed" },
                    if ok { "OK" } else { "Critical" },
                );
            });
        let handle = match spawned {
            Ok(h) => h,
            Err(e) => {
                // Thread exhaustion must not take the manager down: park the
                // task resource in Exception and report a service error.
                finish_task(created, false);
                let _ = reg.patch(
                    &task_id,
                    &json!({"TaskState": TaskState::Exception, "Messages": [format!("worker spawn failed: {e}")]}),
                    None,
                );
                return Err(RedfishError::Internal(format!("cannot spawn task worker: {e}")));
            }
        };
        self.handles.lock().push(handle);
        Ok(task_id)
    }

    /// Run a task body inline (deterministic tests and latency-sensitive
    /// small operations). Same resource lifecycle, no thread.
    pub fn run_inline<F>(&self, reg: &Registry, events: &EventService, name: &str, body: F) -> RedfishResult<ODataId>
    where
        F: FnOnce() -> TaskOutcome,
    {
        let seq = self.next_task.fetch_add(1, Ordering::AcqRel);
        let col = ODataId::new(top::TASKS);
        let tid = seq.to_string();
        let task = Task::new(&col, &tid, name);
        let task_id = col.child(&tid);
        reg.create(&task_id, task.to_value())?;
        task_metrics().inflight.add(1);
        let created = std::time::Instant::now();
        reg.patch(&task_id, &json!({"TaskState": TaskState::Running}), None)?;
        let outcome = body();
        let (patch, ok) = match outcome {
            Ok(payload) => (
                json!({"TaskState": TaskState::Completed, "PercentComplete": 100, "Payload": payload}),
                true,
            ),
            Err(msg) => (json!({"TaskState": TaskState::Exception, "Messages": [msg]}), false),
        };
        reg.patch(&task_id, &patch, None)?;
        finish_task(created, ok);
        events.publish(
            EventType::StatusChange,
            &task_id,
            if ok { "task completed" } else { "task failed" },
            if ok { "OK" } else { "Critical" },
        );
        Ok(task_id)
    }

    /// Block until every spawned task thread has finished (shutdown/tests).
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    /// Read a task's state from the tree.
    pub fn state_of(reg: &Registry, task: &ODataId) -> RedfishResult<TaskState> {
        let body = reg.get(task)?.body;
        serde_json::from_value(body["TaskState"].clone())
            .map_err(|e| redfish_model::RedfishError::Internal(format!("bad TaskState: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bootstrap;

    fn setup() -> (Arc<Registry>, Arc<EventService>, TaskService) {
        let reg = Arc::new(Registry::new());
        bootstrap(&reg, "u").unwrap();
        let clock = Arc::new(Clock::manual());
        let ev = Arc::new(EventService::new(Arc::clone(&clock)));
        let ts = TaskService::new(clock);
        (reg, ev, ts)
    }

    #[test]
    fn inline_task_completes_with_payload() {
        let (reg, ev, ts) = setup();
        let tid = ts
            .run_inline(&reg, &ev, "compose", || Ok(json!({"system": "/redfish/v1/Systems/j1"})))
            .unwrap();
        assert_eq!(TaskService::state_of(&reg, &tid).unwrap(), TaskState::Completed);
        let body = reg.get(&tid).unwrap().body;
        assert_eq!(body["Payload"]["system"], "/redfish/v1/Systems/j1");
        assert_eq!(body["PercentComplete"], 100);
    }

    #[test]
    fn inline_task_failure_records_message() {
        let (reg, ev, ts) = setup();
        let tid = ts
            .run_inline(&reg, &ev, "compose", || Err("no memory left".to_string()))
            .unwrap();
        assert_eq!(TaskService::state_of(&reg, &tid).unwrap(), TaskState::Exception);
        assert_eq!(reg.get(&tid).unwrap().body["Messages"][0], "no memory left");
    }

    #[test]
    fn spawned_task_runs_on_worker_and_publishes_event() {
        let (reg, ev, ts) = setup();
        let (_, rx) = ev
            .subscribe(&reg, "channel://c", vec![EventType::StatusChange], vec![])
            .unwrap();
        let tid = ts.spawn(&reg, &ev, "zone-sweep", || Ok(json!(42))).unwrap();
        ts.join_all();
        assert_eq!(TaskService::state_of(&reg, &tid).unwrap(), TaskState::Completed);
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.events[0].message, "task completed");
    }

    #[test]
    fn tasks_appear_in_collection() {
        let (reg, ev, ts) = setup();
        ts.run_inline(&reg, &ev, "a", || Ok(json!(null))).unwrap();
        ts.run_inline(&reg, &ev, "b", || Ok(json!(null))).unwrap();
        assert_eq!(reg.members(&ODataId::new(top::TASKS)).unwrap().len(), 2);
    }
}
