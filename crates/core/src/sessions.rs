//! The OFMF session service: token-authenticated client sessions.
//!
//! `POST /redfish/v1/SessionService/Sessions` with credentials yields an
//! `X-Auth-Token`; subsequent requests present the token. Tokens are opaque
//! strings derived from a seeded counter (no time-based entropy, so tests
//! are deterministic); sessions idle past the timeout are reaped lazily.

use crate::clock::Clock;
use ofmf_wal::{Wal, WalRecord};
use parking_lot::RwLock;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::session::Session;
use redfish_model::resources::Resource;
use redfish_model::{RedfishError, RedfishResult, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default idle timeout (ms of service clock).
pub const DEFAULT_TIMEOUT_MS: u64 = 30 * 60 * 1000;

#[derive(Debug, Clone)]
struct Live {
    session_id: String,
    user: String,
    last_used_ms: u64,
}

/// The session service.
pub struct SessionService {
    clock: Arc<Clock>,
    /// username → password. A production OFMF would back this with the
    /// site's identity provider; the emulator takes a static table.
    credentials: RwLock<HashMap<String, String>>,
    tokens: RwLock<HashMap<String, Live>>,
    next: AtomicU64,
    seed: u64,
    timeout_ms: u64,
    /// Durability journal. Session lifecycle records are appended while the
    /// token-table lock is held, so per-token ordering (login → touches →
    /// end) is exact on replay. Lock order: tokens → WAL file mutex (leaf).
    journal: RwLock<Option<Arc<Wal>>>,
}

impl SessionService {
    /// New service with the given credential table.
    pub fn new(clock: Arc<Clock>, credentials: HashMap<String, String>, seed: u64) -> Self {
        SessionService {
            clock,
            credentials: RwLock::new(credentials),
            tokens: RwLock::new(HashMap::new()),
            next: AtomicU64::new(1),
            seed,
            timeout_ms: DEFAULT_TIMEOUT_MS,
            journal: RwLock::new(None),
        }
    }

    /// Override the idle timeout.
    pub fn with_timeout_ms(mut self, t: u64) -> Self {
        self.timeout_ms = t;
        self
    }

    /// The idle window after which unused sessions are evicted.
    pub fn timeout_ms(&self) -> u64 {
        self.timeout_ms
    }

    /// Attach (or detach) the durability journal. Attached before any login
    /// on a fresh boot; after replay on a restored boot.
    pub fn set_journal(&self, wal: Option<Arc<Wal>>) {
        *self.journal.write() = wal;
    }

    fn journal_record(&self, rec: WalRecord) {
        if let Some(w) = self.journal.read().as_ref() {
            w.record(&rec);
        }
    }

    fn mint_token(&self, n: u64) -> String {
        // splitmix-style mixing; the token is opaque, not a secret-grade MAC
        // (the emulator has no TLS either).
        let mut x = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        format!("ofmf-{:016x}{:08x}", x ^ (x >> 31), n)
    }

    /// Authenticate and create a session. Returns `(token, session resource id)`.
    pub fn login(&self, reg: &Registry, user: &str, password: &str) -> RedfishResult<(String, ODataId)> {
        let ok = self.credentials.read().get(user).is_some_and(|p| p == password);
        if !ok {
            return Err(RedfishError::Unauthorized);
        }
        // Login is the natural churn point: reap anything already expired so
        // the Sessions collection cannot grow without bound under clients
        // that log in and vanish.
        self.sweep_expired(reg);
        let n = self.next.fetch_add(1, Ordering::AcqRel);
        let token = self.mint_token(n);
        let sid = n.to_string();
        let col = ODataId::new(top::SESSIONS);
        let now = self.clock.now_ms();
        reg.create(&col.child(&sid), Session::new(&col, &sid, user, now).to_value())?;
        let mut tokens = self.tokens.write();
        tokens.insert(
            token.clone(),
            Live {
                session_id: sid.clone(),
                user: user.to_string(),
                last_used_ms: now,
            },
        );
        self.journal_record(WalRecord::SessionLogin {
            token: token.clone(),
            session_id: sid.clone(),
            user: user.to_string(),
            last_used_ms: now,
        });
        drop(tokens);
        Ok((token, col.child(&sid)))
    }

    /// Validate a token, refreshing its idle timer. Returns the username.
    pub fn authenticate(&self, reg: &Registry, token: &str) -> RedfishResult<String> {
        let now = self.clock.now_ms();
        let mut tokens = self.tokens.write();
        let Some(live) = tokens.get_mut(token) else {
            return Err(RedfishError::Unauthorized);
        };
        if now.saturating_sub(live.last_used_ms) > self.timeout_ms {
            let sid = live.session_id.clone();
            tokens.remove(token);
            self.journal_record(WalRecord::SessionEnd {
                token: token.to_string(),
            });
            drop(tokens);
            let _ = reg.delete(&ODataId::new(top::SESSIONS).child(&sid));
            return Err(RedfishError::Unauthorized);
        }
        live.last_used_ms = now;
        let user = live.user.clone();
        self.journal_record(WalRecord::SessionTouch {
            token: token.to_string(),
            last_used_ms: now,
        });
        Ok(user)
    }

    /// Log out (DELETE on the session resource).
    pub fn logout(&self, reg: &Registry, token: &str) -> RedfishResult<()> {
        let mut tokens = self.tokens.write();
        let Some(live) = tokens.remove(token) else {
            return Err(RedfishError::Unauthorized);
        };
        self.journal_record(WalRecord::SessionEnd {
            token: token.to_string(),
        });
        drop(tokens);
        reg.delete(&ODataId::new(top::SESSIONS).child(&live.session_id))?;
        Ok(())
    }

    /// Reap every session idle past the timeout, deleting its resource from
    /// the tree. Called on each login and from the daemon's poll loop, so
    /// abandoned sessions disappear without their token ever being
    /// re-presented. Returns the number of sessions reaped.
    pub fn sweep_expired(&self, reg: &Registry) -> usize {
        let now = self.clock.now_ms();
        let doomed: Vec<(String, String)> = {
            let mut tokens = self.tokens.write();
            let expired: Vec<String> = tokens
                .iter()
                .filter(|(_, live)| now.saturating_sub(live.last_used_ms) > self.timeout_ms)
                .map(|(t, _)| t.clone())
                .collect();
            let doomed: Vec<(String, String)> = expired
                .into_iter()
                .filter_map(|t| tokens.remove(&t).map(|live| (t, live.session_id)))
                .collect();
            for (t, _) in &doomed {
                self.journal_record(WalRecord::SessionEnd { token: t.clone() });
            }
            doomed
        };
        for (_, sid) in &doomed {
            let _ = reg.delete(&ODataId::new(top::SESSIONS).child(sid));
        }
        doomed.len()
    }

    /// Re-install a session during WAL replay, preserving its original
    /// identity and idle timer. The restored session expires exactly
    /// `timeout_ms` after its pre-crash `last_used_ms` — neither immortal
    /// nor instantly reaped. Does not touch the registry (the session
    /// resource is rebuilt by registry-record replay).
    pub fn restore_session(&self, token: &str, session_id: &str, user: &str, last_used_ms: u64) {
        self.tokens.write().insert(
            token.to_string(),
            Live {
                session_id: session_id.to_string(),
                user: user.to_string(),
                last_used_ms,
            },
        );
        // Keep the id/token allocator above every restored session so new
        // logins never collide with replayed ones.
        if let Ok(n) = session_id.parse::<u64>() {
            self.next.fetch_max(n.saturating_add(1), Ordering::AcqRel);
        }
    }

    /// One `SessionLogin` record per live session — the compact form a
    /// snapshot stores instead of the login/touch/end history.
    pub fn snapshot_records(&self) -> Vec<WalRecord> {
        let tokens = self.tokens.read();
        let mut recs: Vec<WalRecord> = tokens
            .iter()
            .map(|(t, live)| WalRecord::SessionLogin {
                token: t.clone(),
                session_id: live.session_id.clone(),
                user: live.user.clone(),
                last_used_ms: live.last_used_ms,
            })
            .collect();
        recs.sort_by(|a, b| {
            let key = |r: &WalRecord| match r {
                WalRecord::SessionLogin { session_id, .. } => session_id.clone(),
                _ => String::new(),
            };
            key(a).cmp(&key(b))
        });
        recs
    }

    /// Live session count (expired-but-unreaped sessions included).
    pub fn session_count(&self) -> usize {
        self.tokens.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bootstrap;

    fn setup(timeout_ms: u64) -> (Registry, SessionService, Arc<Clock>) {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let clock = Arc::new(Clock::manual());
        let mut creds = HashMap::new();
        creds.insert("admin".to_string(), "hunter2".to_string());
        let svc = SessionService::new(Arc::clone(&clock), creds, 42).with_timeout_ms(timeout_ms);
        (reg, svc, clock)
    }

    #[test]
    fn login_creates_session_resource() {
        let (reg, svc, _clock) = setup(DEFAULT_TIMEOUT_MS);
        let (token, sid) = svc.login(&reg, "admin", "hunter2").unwrap();
        assert!(token.starts_with("ofmf-"));
        assert!(reg.exists(&sid));
        assert_eq!(svc.authenticate(&reg, &token).unwrap(), "admin");
    }

    #[test]
    fn wrong_password_rejected() {
        let (reg, svc, _clock) = setup(DEFAULT_TIMEOUT_MS);
        assert!(matches!(
            svc.login(&reg, "admin", "wrong"),
            Err(RedfishError::Unauthorized)
        ));
        assert!(matches!(svc.login(&reg, "eve", "x"), Err(RedfishError::Unauthorized)));
    }

    #[test]
    fn tokens_expire_after_idle_timeout() {
        let (reg, svc, clock) = setup(1000);
        let (token, sid) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(999);
        assert!(svc.authenticate(&reg, &token).is_ok(), "refreshes timer");
        clock.advance_ms(1001);
        assert!(matches!(
            svc.authenticate(&reg, &token),
            Err(RedfishError::Unauthorized)
        ));
        assert!(!reg.exists(&sid), "expired session resource reaped");
    }

    #[test]
    fn logout_invalidates_token() {
        let (reg, svc, _clock) = setup(DEFAULT_TIMEOUT_MS);
        let (token, sid) = svc.login(&reg, "admin", "hunter2").unwrap();
        svc.logout(&reg, &token).unwrap();
        assert!(!reg.exists(&sid));
        assert!(matches!(
            svc.authenticate(&reg, &token),
            Err(RedfishError::Unauthorized)
        ));
        assert!(matches!(svc.logout(&reg, &token), Err(RedfishError::Unauthorized)));
    }

    #[test]
    fn sweep_reaps_all_expired_sessions() {
        let (reg, svc, clock) = setup(1000);
        let (_t1, s1) = svc.login(&reg, "admin", "hunter2").unwrap();
        let (_t2, s2) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(500);
        let (t3, s3) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(700); // s1/s2 idle 1200ms (expired), s3 idle 700ms
        assert_eq!(svc.sweep_expired(&reg), 2);
        assert!(!reg.exists(&s1) && !reg.exists(&s2), "expired resources reaped");
        assert!(reg.exists(&s3));
        assert!(svc.authenticate(&reg, &t3).is_ok());
        assert_eq!(svc.session_count(), 1);
    }

    #[test]
    fn login_sweeps_abandoned_sessions() {
        let (reg, svc, clock) = setup(1000);
        let (_t1, s1) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(2000);
        // The abandoned session's token is never re-presented; a fresh
        // login alone reclaims it.
        let (_t2, s2) = svc.login(&reg, "admin", "hunter2").unwrap();
        assert!(!reg.exists(&s1));
        assert!(reg.exists(&s2));
        assert_eq!(svc.session_count(), 1);
    }

    #[test]
    fn restored_sessions_expire_at_their_original_deadline() {
        // Satellite 2 regression: a session restored from the WAL must
        // re-enter the expiry sweep with its ORIGINAL deadline — not be
        // immortal (timer reset) and not be instantly reaped (timer zeroed).
        let (reg, svc, clock) = setup(1000);
        let (token, sid) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(400);
        svc.authenticate(&reg, &token).unwrap(); // last_used_ms = 400

        // "Restart": fresh service on a fresh clock resumed to the
        // pre-crash timeline, session re-installed from its journal record.
        let (reg2, svc2, clock2) = setup(1000);
        clock2.resume_from(clock.now_ms());
        svc2.restore_session(&token, "1", "admin", 400);
        reg2.create(
            &sid,
            Session::new(&ODataId::new(top::SESSIONS), "1", "admin", 400).to_value(),
        )
        .unwrap();

        clock2.advance_ms(900); // idle 900ms < 1000ms: still valid
        assert_eq!(
            svc2.authenticate(&reg2, &token).unwrap(),
            "admin",
            "not instantly reaped"
        );
        clock2.advance_ms(1001); // idle past the (refreshed) deadline
        assert!(
            matches!(svc2.authenticate(&reg2, &token), Err(RedfishError::Unauthorized)),
            "not immortal"
        );
        assert!(!reg2.exists(&sid));
    }

    #[test]
    fn restored_sessions_do_not_collide_with_new_logins() {
        let (reg, svc, _clock) = setup(DEFAULT_TIMEOUT_MS);
        svc.restore_session("ofmf-restored", "7", "admin", 0);
        let (_token, sid) = svc.login(&reg, "admin", "hunter2").unwrap();
        assert_eq!(sid.as_str(), "/redfish/v1/SessionService/Sessions/8");
        assert_eq!(svc.session_count(), 2);
    }

    #[test]
    fn session_lifecycle_is_journaled_and_replayable() {
        let dir = std::env::temp_dir().join(format!("ofmf-sess-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let wal = Arc::new(Wal::open(&dir, ofmf_wal::FsyncPolicy::Off).unwrap());
        let (reg, svc, clock) = setup(1000);
        svc.set_journal(Some(Arc::clone(&wal)));

        let (t1, _) = svc.login(&reg, "admin", "hunter2").unwrap();
        let (t2, _) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(500);
        svc.authenticate(&reg, &t1).unwrap();
        svc.logout(&reg, &t2).unwrap();

        let recs = wal.replay().unwrap().records;
        // Fold the journal the way boot does: login → map insert,
        // touch → timer update, end → remove.
        let mut live: HashMap<String, u64> = HashMap::new();
        for r in &recs {
            match r {
                WalRecord::SessionLogin {
                    token, last_used_ms, ..
                } => {
                    live.insert(token.clone(), *last_used_ms);
                }
                WalRecord::SessionTouch { token, last_used_ms } => {
                    live.insert(token.clone(), *last_used_ms);
                }
                WalRecord::SessionEnd { token } => {
                    live.remove(token);
                }
                _ => {}
            }
        }
        assert_eq!(live.len(), 1);
        assert_eq!(live.get(&t1), Some(&500), "touch refreshed the journaled timer");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_records_capture_live_sessions() {
        let (reg, svc, clock) = setup(1000);
        let (t1, _) = svc.login(&reg, "admin", "hunter2").unwrap();
        clock.advance_ms(100);
        let (_t2, _) = svc.login(&reg, "admin", "hunter2").unwrap();
        let recs = svc.snapshot_records();
        assert_eq!(recs.len(), 2);
        match &recs[0] {
            WalRecord::SessionLogin {
                token,
                session_id,
                user,
                last_used_ms,
            } => {
                assert_eq!(token, &t1);
                assert_eq!(session_id, "1");
                assert_eq!(user, "admin");
                assert_eq!(*last_used_ms, 0);
            }
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn tokens_are_unique() {
        let (reg, svc, _clock) = setup(DEFAULT_TIMEOUT_MS);
        let (t1, _) = svc.login(&reg, "admin", "hunter2").unwrap();
        let (t2, _) = svc.login(&reg, "admin", "hunter2").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(svc.session_count(), 2);
    }
}
