//! The OFMF event service.
//!
//! Clients subscribe by creating an `EventDestination`; the service fans
//! published records out to every matching subscription's bounded delivery
//! queue. Bounded queues (crossbeam) protect the OFMF from slow consumers:
//! when a queue is full the new batch is dropped (after one retry against a
//! racing consumer) and a drop counter is bumped — the subscriber can detect
//! gaps from event ids.
//!
//! # Fan-out at scale
//!
//! Two structures keep `publish` fast when subscriptions number in the
//! hundreds:
//!
//! * **Routing index.** Subscriptions are bucketed by `EventType` and by the
//!   top-level collection segment of their origin filters (the same keying
//!   scheme the sharded registry uses), so a publish visits only candidate
//!   subscribers instead of scanning every subscription. Subscriptions with
//!   no origin filter (or a filter at/above the service root) land in a
//!   per-type wildcard list. The index is maintained incrementally on
//!   subscribe/unsubscribe; [`EventService::with_linear_matching`] restores
//!   the old full-scan behavior for A/B benchmarking.
//! * **Shared zero-copy batches.** One fan-out allocates a single
//!   `Arc<[EventRecord]>` plus a single lazily-serialized wire body
//!   ([`SharedEventBody`]); every subscriber's queue receives a cheap
//!   [`EventEnvelope`] (three `Arc` clones) carrying its own per-delivery
//!   batch id. No per-subscriber deep clone, no per-subscriber
//!   re-serialization.

use crate::clock::Clock;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ofmf_obs::{Counter, Histogram};
use ofmf_wal::{Wal, WalRecord};
use parking_lot::RwLock;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::events::{EventDestination, EventEnvelope, EventRecord, EventType, SharedEventBody};
use redfish_model::resources::Resource;
use redfish_model::{RedfishError, RedfishResult, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default per-subscription queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

struct Subscription {
    id: String,
    dest: EventDestination,
    tx: Sender<EventEnvelope>,
    dropped: AtomicU64,
    /// Set once the subscriber's losses have been announced as an `Alert`
    /// (fires a single time per subscription).
    drop_alerted: AtomicBool,
}

struct EventMetrics {
    /// `ofmf.events.fanout.latency_ns`
    fanout_latency: Arc<Histogram>,
    /// `ofmf.events.published.total` — fan-out invocations.
    published: Arc<Counter>,
    /// `ofmf.events.delivered.total` — successful queue deliveries.
    delivered: Arc<Counter>,
    /// `ofmf.events.dropped.total` — batches lost to slow/dead subscribers.
    dropped: Arc<Counter>,
    /// `ofmf.events.index.candidates.total` — subscriptions visited by
    /// indexed fan-outs (match checks actually performed).
    index_candidates: Arc<Counter>,
    /// `ofmf.events.index.skipped.total` — subscriptions the index proved
    /// irrelevant without a match check (the scan work saved vs linear).
    index_skipped: Arc<Counter>,
}

fn event_metrics() -> &'static EventMetrics {
    static METRICS: OnceLock<EventMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EventMetrics {
        fanout_latency: ofmf_obs::histogram("ofmf.events.fanout.latency_ns"),
        published: ofmf_obs::counter("ofmf.events.published.total"),
        delivered: ofmf_obs::counter("ofmf.events.delivered.total"),
        dropped: ofmf_obs::counter("ofmf.events.dropped.total"),
        index_candidates: ofmf_obs::counter("ofmf.events.index.candidates.total"),
        index_skipped: ofmf_obs::counter("ofmf.events.index.skipped.total"),
    })
}

/// Stable wire name of an event type, used by the durability journal
/// (`WalRecord::Subscribe` stores type filters as strings).
pub fn event_type_label(t: EventType) -> &'static str {
    match t {
        EventType::StatusChange => "StatusChange",
        EventType::ResourceAdded => "ResourceAdded",
        EventType::ResourceRemoved => "ResourceRemoved",
        EventType::ResourceUpdated => "ResourceUpdated",
        EventType::Alert => "Alert",
        EventType::MetricReport => "MetricReport",
    }
}

/// Inverse of [`event_type_label`]; `None` for unknown names (a journal
/// written by a future OFMF — the filter entry is skipped, not fatal).
pub fn event_type_from_label(s: &str) -> Option<EventType> {
    match s {
        "StatusChange" => Some(EventType::StatusChange),
        "ResourceAdded" => Some(EventType::ResourceAdded),
        "ResourceRemoved" => Some(EventType::ResourceRemoved),
        "ResourceUpdated" => Some(EventType::ResourceUpdated),
        "Alert" => Some(EventType::Alert),
        "MetricReport" => Some(EventType::MetricReport),
        _ => None,
    }
}

/// Position of an event type in the routing index's bucket array.
fn type_index(t: EventType) -> usize {
    match t {
        EventType::StatusChange => 0,
        EventType::ResourceAdded => 1,
        EventType::ResourceRemoved => 2,
        EventType::ResourceUpdated => 3,
        EventType::Alert => 4,
        EventType::MetricReport => 5,
    }
}

/// The routing key of an origin path: its top-level collection segment
/// (`Systems`, `Fabrics`, …) — the same scheme the registry shards on.
/// Root documents key to the empty string (they span every segment).
fn origin_key(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("/redfish/v1/") {
        rest.split('/').next().unwrap_or("")
    } else if path == "/redfish/v1" || path == "/redfish" || path == "/" {
        ""
    } else {
        path.trim_start_matches('/').split('/').next().unwrap_or("")
    }
}

/// Bucket indices a subscription's type filter occupies (all six for a
/// wildcard filter).
fn type_slots(dest: &EventDestination) -> Vec<usize> {
    if dest.event_types.is_empty() {
        (0..EventType::ALL.len()).collect()
    } else {
        let mut v: Vec<usize> = dest.event_types.iter().map(|t| type_index(*t)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Distinct routing keys of a subscription's origin filters; `None` means
/// the subscription is a candidate for every origin (no filter, or a filter
/// at/above the service root whose subtree spans every top-level segment).
fn origin_keys(dest: &EventDestination) -> Option<Vec<String>> {
    if dest.origin_resources.is_empty() {
        return None;
    }
    let mut keys: Vec<String> = Vec::with_capacity(dest.origin_resources.len());
    for l in &dest.origin_resources {
        let k = origin_key(l.odata_id.as_str());
        if k.is_empty() {
            return None;
        }
        if !keys.iter().any(|x| x == k) {
            keys.push(k.to_string());
        }
    }
    Some(keys)
}

/// One `EventType`'s slice of the routing index.
#[derive(Default)]
struct TypeBucket {
    /// origin routing key → subscriptions whose filters live under it.
    by_origin: HashMap<String, Vec<Arc<Subscription>>>,
    /// Subscriptions that are candidates for every origin.
    any_origin: Vec<Arc<Subscription>>,
}

/// `EventType`-bucketed, origin-prefix-mapped subscription index. A
/// subscription appears in every type bucket it can match, and within a
/// bucket in exactly one list per routing key — so the candidate set for a
/// publish (`by_origin[key] ∪ any_origin`) never yields a duplicate.
#[derive(Default)]
struct RoutingIndex {
    buckets: [TypeBucket; 6],
}

impl RoutingIndex {
    fn insert(&mut self, sub: &Arc<Subscription>) {
        let keys = origin_keys(&sub.dest);
        for ti in type_slots(&sub.dest) {
            // ofmf-lint: allow(no-panic-path, "type_slots maps the 6 EventType variants to 0..6, the bucket count")
            let bucket = &mut self.buckets[ti];
            match &keys {
                None => bucket.any_origin.push(Arc::clone(sub)),
                Some(ks) => {
                    for k in ks {
                        bucket.by_origin.entry(k.clone()).or_default().push(Arc::clone(sub));
                    }
                }
            }
        }
    }

    fn remove(&mut self, sub: &Subscription) {
        let keys = origin_keys(&sub.dest);
        for ti in type_slots(&sub.dest) {
            // ofmf-lint: allow(no-panic-path, "type_slots maps the 6 EventType variants to 0..6, the bucket count")
            let bucket = &mut self.buckets[ti];
            match &keys {
                None => bucket.any_origin.retain(|s| s.id != sub.id),
                Some(ks) => {
                    for k in ks {
                        if let Some(v) = bucket.by_origin.get_mut(k.as_str()) {
                            v.retain(|s| s.id != sub.id);
                            if v.is_empty() {
                                bucket.by_origin.remove(k.as_str());
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The subscription table: id map plus the routing index, mutated together
/// under one lock so the two views never diverge.
#[derive(Default)]
struct SubTable {
    by_id: HashMap<String, Arc<Subscription>>,
    index: RoutingIndex,
}

/// The subscription-based event service.
pub struct EventService {
    clock: Arc<Clock>,
    subs: RwLock<SubTable>,
    next_sub: AtomicU64,
    next_event: AtomicU64,
    queue_depth: usize,
    /// Ablation switch: scan every subscription instead of the index.
    linear: bool,
    /// Durability journal. Subscribe/unsubscribe records are appended while
    /// the subscription-table lock is held, so replay order matches live
    /// order. Lock order: subs → WAL file mutex (leaf).
    journal: RwLock<Option<Arc<Wal>>>,
}

impl EventService {
    /// New service using `clock` for record timestamps.
    pub fn new(clock: Arc<Clock>) -> Self {
        EventService {
            clock,
            subs: RwLock::new(SubTable::default()),
            next_sub: AtomicU64::new(1),
            next_event: AtomicU64::new(1),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            linear: false,
            journal: RwLock::new(None),
        }
    }

    /// Attach (or detach) the durability journal.
    pub fn set_journal(&self, wal: Option<Arc<Wal>>) {
        *self.journal.write() = wal;
    }

    fn journal_record(&self, rec: WalRecord) {
        if let Some(w) = self.journal.read().as_ref() {
            w.record(&rec);
        }
    }

    /// Override the per-subscription queue depth (before subscribing).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Disable the routing index: fan-out scans every subscription, exactly
    /// as before the index existed. For A/B benchmarking and equivalence
    /// tests; delivery semantics are identical.
    pub fn with_linear_matching(mut self) -> Self {
        self.linear = true;
        self
    }

    /// Create a subscription. Registers the `EventDestination` resource in
    /// `reg` and returns `(subscription id, delivery receiver)`. Atomic with
    /// respect to the registry: if resource creation fails, the service's
    /// subscription table is left untouched.
    pub fn subscribe(
        &self,
        reg: &Registry,
        destination: &str,
        event_types: Vec<EventType>,
        origin_resources: Vec<ODataId>,
    ) -> RedfishResult<(String, Receiver<EventEnvelope>)> {
        let id = self.next_sub.fetch_add(1, Ordering::AcqRel).to_string();
        let subs_col = ODataId::new(top::SUBSCRIPTIONS);
        let dest = EventDestination::new(&subs_col, &id, destination, event_types, origin_resources);
        reg.create(&subs_col.child(&id), dest.to_value())?;
        let (tx, rx) = bounded(self.queue_depth);
        let sub = Arc::new(Subscription {
            id: id.clone(),
            dest,
            tx,
            dropped: AtomicU64::new(0),
            drop_alerted: AtomicBool::new(false),
        });
        let mut subs = self.subs.write();
        subs.index.insert(&sub);
        self.journal_record(WalRecord::Subscribe {
            id: id.clone(),
            destination: sub.dest.destination.clone(),
            event_types: sub
                .dest
                .event_types
                .iter()
                .map(|t| event_type_label(*t).to_string())
                .collect(),
            origins: sub
                .dest
                .origin_resources
                .iter()
                .map(|l| l.odata_id.as_str().to_string())
                .collect(),
        });
        subs.by_id.insert(id.clone(), sub);
        Ok((id, rx))
    }

    /// Re-install a subscription during WAL replay. Skips registry resource
    /// creation (the `EventDestination` resource is rebuilt by
    /// registry-record replay) and keeps the id allocator above every
    /// restored id. Returns the fresh delivery receiver — the pre-crash
    /// consumer is gone, so the queue starts empty.
    pub fn restore_subscription(
        &self,
        id: &str,
        destination: &str,
        event_types: Vec<EventType>,
        origin_resources: Vec<ODataId>,
    ) -> Receiver<EventEnvelope> {
        let subs_col = ODataId::new(top::SUBSCRIPTIONS);
        let dest = EventDestination::new(&subs_col, id, destination, event_types, origin_resources);
        let (tx, rx) = bounded(self.queue_depth);
        let sub = Arc::new(Subscription {
            id: id.to_string(),
            dest,
            tx,
            dropped: AtomicU64::new(0),
            drop_alerted: AtomicBool::new(false),
        });
        if let Ok(n) = id.parse::<u64>() {
            self.next_sub.fetch_max(n.saturating_add(1), Ordering::AcqRel);
        }
        let mut subs = self.subs.write();
        subs.index.insert(&sub);
        subs.by_id.insert(id.to_string(), sub);
        rx
    }

    /// One `Subscribe` record per live subscription — the compact form a
    /// snapshot stores instead of the subscribe/unsubscribe history.
    pub fn snapshot_records(&self) -> Vec<WalRecord> {
        let subs = self.subs.read();
        let mut ids: Vec<&String> = subs.by_id.keys().collect();
        ids.sort();
        ids.iter()
            .filter_map(|id| subs.by_id.get(*id))
            .map(|sub| WalRecord::Subscribe {
                id: sub.id.clone(),
                destination: sub.dest.destination.clone(),
                event_types: sub
                    .dest
                    .event_types
                    .iter()
                    .map(|t| event_type_label(*t).to_string())
                    .collect(),
                origins: sub
                    .dest
                    .origin_resources
                    .iter()
                    .map(|l| l.odata_id.as_str().to_string())
                    .collect(),
            })
            .collect()
    }

    /// Delete a subscription (client unsubscribes or its queue is dead).
    /// Atomic with respect to the registry: if the `EventDestination`
    /// resource cannot be deleted (other than already being gone), the
    /// subscription is restored and keeps delivering.
    pub fn unsubscribe(&self, reg: &Registry, id: &str) -> RedfishResult<()> {
        let removed = {
            let mut subs = self.subs.write();
            match subs.by_id.remove(id) {
                Some(sub) => {
                    subs.index.remove(&sub);
                    sub
                }
                None => return Err(RedfishError::NotFound(ODataId::new(top::SUBSCRIPTIONS).child(id))),
            }
        };
        match reg.delete(&ODataId::new(top::SUBSCRIPTIONS).child(id)) {
            Ok(()) => {
                self.journal_record(WalRecord::Unsubscribe { id: id.to_string() });
                Ok(())
            }
            // The resource is already gone: both views agree, call it done.
            Err(RedfishError::NotFound(_)) => {
                self.journal_record(WalRecord::Unsubscribe { id: id.to_string() });
                Ok(())
            }
            Err(e) => {
                let mut subs = self.subs.write();
                subs.index.insert(&removed);
                subs.by_id.insert(id.to_string(), removed);
                Err(e)
            }
        }
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.read().by_id.len()
    }

    /// Batches dropped for subscription `id` due to a full queue.
    pub fn dropped_count(&self, id: &str) -> u64 {
        self.subs
            .read()
            .by_id
            .get(id)
            .map_or(0, |s| s.dropped.load(Ordering::Acquire))
    }

    /// Build a service-stamped record (fresh event id, service clock).
    /// Pair with [`EventService::publish_batch`] to forward many agent
    /// events as one fan-out.
    pub fn record(
        &self,
        event_type: EventType,
        origin: &ODataId,
        message: impl Into<String>,
        severity: &str,
    ) -> EventRecord {
        let event_id = self.next_event.fetch_add(1, Ordering::AcqRel);
        EventRecord::new(event_type, event_id, origin, message, severity, self.clock.now_ms())
    }

    /// Publish one record: build the batch and fan it out to every matching
    /// subscription. Returns the number of subscriptions it was delivered to.
    pub fn publish(
        &self,
        event_type: EventType,
        origin: &ODataId,
        message: impl Into<String>,
        severity: &str,
    ) -> usize {
        let record = self.record(event_type, origin, message, severity);
        self.fan_out(event_type, origin, vec![record])
    }

    /// Publish a pre-built batch of records sharing one origin/type (bulk
    /// agent forwarding).
    pub fn publish_batch(&self, event_type: EventType, origin: &ODataId, records: Vec<EventRecord>) -> usize {
        self.fan_out(event_type, origin, records)
    }

    fn fan_out(&self, event_type: EventType, origin: &ODataId, records: Vec<EventRecord>) -> usize {
        let metrics = event_metrics();
        metrics.published.inc();
        let _span = ofmf_obs::Trace::begin(&metrics.fanout_latency);
        // One shared allocation + one (lazy) serialization for the whole
        // fan-out, however many subscribers match.
        let records: Arc<[EventRecord]> = records.into();
        let shared = SharedEventBody::new();
        let subs = self.subs.read();
        let mut delivered = 0;
        // Subscribers whose accumulated losses crossed the alert threshold
        // during this fan-out; announced after the read lock is released.
        let mut newly_lossy: Vec<String> = Vec::new();
        if self.linear {
            for sub in subs.by_id.values() {
                if !sub.dest.matches(event_type, origin) {
                    continue;
                }
                self.deliver(sub, &records, &shared, &mut delivered, &mut newly_lossy);
            }
        } else {
            // ofmf-lint: allow(no-panic-path, "type_index maps the 6 EventType variants to 0..6, the bucket count")
            let bucket = &subs.index.buckets[type_index(event_type)];
            let keyed = bucket
                .by_origin
                .get(origin_key(origin.as_str()))
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let mut candidates = 0u64;
            for sub in keyed.iter().chain(bucket.any_origin.iter()) {
                candidates += 1;
                if !sub.dest.matches(event_type, origin) {
                    continue;
                }
                self.deliver(sub, &records, &shared, &mut delivered, &mut newly_lossy);
            }
            metrics.index_candidates.add(candidates);
            metrics.index_skipped.add(subs.by_id.len() as u64 - candidates);
        }
        drop(subs);
        for id in newly_lossy {
            self.alert_lossy_subscriber(&id);
        }
        delivered
    }

    /// Enqueue one delivery: a fresh per-delivery batch id around the shared
    /// record batch. A full queue gets exactly one retry (a racing consumer
    /// may have freed space); a successful retry counts as delivered, a
    /// still-full queue drops the new batch exactly once — a batch id is
    /// never enqueued twice.
    fn deliver(
        &self,
        sub: &Subscription,
        records: &Arc<[EventRecord]>,
        shared: &SharedEventBody,
        delivered: &mut usize,
        newly_lossy: &mut Vec<String>,
    ) {
        let metrics = event_metrics();
        let batch_id = self.next_event.fetch_add(1, Ordering::AcqRel);
        let mut ev = EventEnvelope::new(batch_id, Arc::clone(records), shared.clone());
        let mut retried = false;
        loop {
            match sub.tx.try_send(ev) {
                Ok(()) => {
                    *delivered += 1;
                    metrics.delivered.inc();
                    break;
                }
                Err(TrySendError::Full(back)) => {
                    if retried {
                        self.count_drop(sub, newly_lossy);
                        break;
                    }
                    retried = true;
                    ev = back;
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.count_drop(sub, newly_lossy);
                    break;
                }
            }
        }
    }

    /// Record one lost batch; when the subscription's total losses first
    /// exceed its queue depth, mark it for a (one-time) alert.
    fn count_drop(&self, sub: &Subscription, newly_lossy: &mut Vec<String>) {
        let total = sub.dropped.fetch_add(1, Ordering::AcqRel) + 1;
        event_metrics().dropped.inc();
        if total > self.queue_depth as u64 && !sub.drop_alerted.swap(true, Ordering::AcqRel) {
            newly_lossy.push(sub.id.clone());
        }
    }

    /// Latched alert: published once per subscription, the first time its
    /// drop count exceeds the queue depth. Runs without the subscription
    /// lock held; re-entry into `fan_out` is safe and cannot recurse again
    /// for the same subscription because the latch is already set.
    fn alert_lossy_subscriber(&self, id: &str) {
        let origin = ODataId::new(top::SUBSCRIPTIONS).child(id);
        let dropped = self.dropped_count(id);
        ofmf_obs::global().ring().emit(
            ofmf_obs::Severity::Warning,
            "ofmf.events",
            format!(
                "subscription {id} is lossy: {dropped} batches dropped (queue depth {})",
                self.queue_depth
            ),
        );
        self.publish(
            EventType::Alert,
            &origin,
            format!("event subscription {id} dropped {dropped} batches; deliveries are lossy"),
            "Warning",
        );
    }

    /// Next event id the service will assign (diagnostics/tests).
    pub fn peek_next_event_id(&self) -> u64 {
        self.next_event.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bootstrap;

    fn setup() -> (Registry, EventService) {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual()));
        (reg, svc)
    }

    #[test]
    fn subscribe_registers_resource_and_delivers() {
        let (reg, svc) = setup();
        let (id, rx) = svc.subscribe(&reg, "channel://c1", vec![], vec![]).unwrap();
        assert!(reg.exists(&ODataId::new(top::SUBSCRIPTIONS).child(&id)));
        let n = svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/CXL0"),
            "link down",
            "Critical",
        );
        assert_eq!(n, 1);
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.events.len(), 1);
        assert_eq!(batch.events[0].severity, "Critical");
    }

    #[test]
    fn filters_route_only_matching_events() {
        let (reg, svc) = setup();
        let (_, rx_alerts) = svc
            .subscribe(
                &reg,
                "channel://a",
                vec![EventType::Alert],
                vec![ODataId::new("/redfish/v1/Fabrics/CXL0")],
            )
            .unwrap();
        let (_, rx_all) = svc.subscribe(&reg, "channel://b", vec![], vec![]).unwrap();
        svc.publish(
            EventType::ResourceAdded,
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Zones/z"),
            "zone",
            "OK",
        );
        svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/IB0/Switches/s"),
            "hot",
            "Warning",
        );
        svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/s"),
            "down",
            "Critical",
        );
        assert_eq!(rx_all.len(), 3);
        assert_eq!(rx_alerts.len(), 1);
        assert_eq!(rx_alerts.try_recv().unwrap().events[0].message, "down");
    }

    #[test]
    fn root_origin_filter_matches_every_segment() {
        // A filter at the service root spans every top-level collection —
        // the index must treat it as a wildcard, not key it to "".
        let (reg, svc) = setup();
        let (_, rx) = svc
            .subscribe(&reg, "channel://root", vec![], vec![ODataId::new("/redfish/v1")])
            .unwrap();
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/Systems/cn0"), "a", "OK");
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/Fabrics/F0"), "b", "OK");
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn multi_origin_filter_subscription_delivers_once_per_event() {
        // Two filters under the same top-level segment must not double-index
        // (and thus double-deliver) the subscription.
        let (reg, svc) = setup();
        let (_, rx) = svc
            .subscribe(
                &reg,
                "channel://multi",
                vec![],
                vec![
                    ODataId::new("/redfish/v1/Fabrics/CXL0"),
                    ODataId::new("/redfish/v1/Fabrics/CXL1"),
                    ODataId::new("/redfish/v1/Systems/cn0"),
                ],
            )
            .unwrap();
        svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/s"),
            "x",
            "OK",
        );
        assert_eq!(rx.len(), 1, "exactly one delivery");
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/Systems/cn0"), "y", "OK");
        assert_eq!(rx.len(), 2);
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/Chassis/c0"), "z", "OK");
        assert_eq!(rx.len(), 2, "unrelated segment filtered out");
    }

    #[test]
    fn linear_matching_is_equivalent() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual())).with_linear_matching();
        let (_, rx_f) = svc
            .subscribe(
                &reg,
                "channel://f",
                vec![EventType::Alert],
                vec![ODataId::new("/redfish/v1/Fabrics/CXL0")],
            )
            .unwrap();
        let (_, rx_all) = svc.subscribe(&reg, "channel://all", vec![], vec![]).unwrap();
        svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/s"),
            "m",
            "OK",
        );
        svc.publish(
            EventType::ResourceAdded,
            &ODataId::new("/redfish/v1/Systems/x"),
            "n",
            "OK",
        );
        assert_eq!(rx_f.len(), 1);
        assert_eq!(rx_all.len(), 2);
    }

    #[test]
    fn fanout_shares_one_record_batch_across_subscribers() {
        let (reg, svc) = setup();
        let (_, rx1) = svc.subscribe(&reg, "channel://a", vec![], vec![]).unwrap();
        let (_, rx2) = svc.subscribe(&reg, "channel://b", vec![], vec![]).unwrap();
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK");
        let b1 = rx1.try_recv().unwrap();
        let b2 = rx2.try_recv().unwrap();
        // Zero-copy: both subscribers hold the same allocation…
        assert!(Arc::ptr_eq(&b1.events, &b2.events));
        // …and the wire body is serialized once and spliced per delivery.
        let w1: serde_json::Value = serde_json::from_str(&b1.wire_json().unwrap()).unwrap();
        let w2: serde_json::Value = serde_json::from_str(&b2.wire_json().unwrap()).unwrap();
        assert_eq!(w1["Events"], w2["Events"]);
        // …while the batch ids stay per-delivery.
        assert_ne!(b1.id, b2.id);
    }

    #[test]
    fn unsubscribe_removes_resource_and_stops_delivery() {
        let (reg, svc) = setup();
        let (id, _rx) = svc.subscribe(&reg, "channel://c", vec![], vec![]).unwrap();
        svc.unsubscribe(&reg, &id).unwrap();
        assert_eq!(svc.subscription_count(), 0);
        assert!(!reg.exists(&ODataId::new(top::SUBSCRIPTIONS).child(&id)));
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK"),
            0
        );
        assert!(matches!(svc.unsubscribe(&reg, &id), Err(RedfishError::NotFound(_))));
    }

    #[test]
    fn subscribe_failure_leaves_table_untouched() {
        let (reg, svc) = setup();
        let (first, _rx) = svc.subscribe(&reg, "channel://ok", vec![], vec![]).unwrap();
        // Squat on the id the service will allocate next, so reg.create fails.
        let next: u64 = first.parse::<u64>().unwrap() + 1;
        let squatted = ODataId::new(top::SUBSCRIPTIONS).child(&next.to_string());
        reg.create(
            &squatted,
            serde_json::json!({"Id": next.to_string(), "Name": "squatter"}),
        )
        .unwrap();
        let err = match svc.subscribe(&reg, "channel://fails", vec![], vec![]) {
            Err(e) => e,
            Ok(_) => panic!("subscribe over a squatted id must fail"),
        };
        assert!(matches!(err, RedfishError::AlreadyExists(_)), "{err}");
        assert_eq!(svc.subscription_count(), 1, "failed subscribe left no entry");
        // The failed attempt consumed an id but delivery still works.
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK"),
            1
        );
    }

    #[test]
    fn unsubscribe_tolerates_already_deleted_resource() {
        let (reg, svc) = setup();
        let (id, _rx) = svc.subscribe(&reg, "channel://c", vec![], vec![]).unwrap();
        // The resource vanishes behind the service's back.
        reg.delete(&ODataId::new(top::SUBSCRIPTIONS).child(&id)).unwrap();
        // Unsubscribe still succeeds and both views agree.
        svc.unsubscribe(&reg, &id).unwrap();
        assert_eq!(svc.subscription_count(), 0);
    }

    #[test]
    fn unsubscribe_restores_subscription_when_delete_fails() {
        let (reg, svc) = setup();
        let (id, rx) = svc.subscribe(&reg, "channel://c", vec![], vec![]).unwrap();
        // A child resource under the EventDestination makes reg.delete
        // refuse with Conflict.
        let sub_path = ODataId::new(top::SUBSCRIPTIONS).child(&id);
        reg.create(&sub_path.child("pin"), serde_json::json!({"Name": "pin"}))
            .unwrap();
        let err = svc.unsubscribe(&reg, &id).unwrap_err();
        assert!(matches!(err, RedfishError::Conflict(_)), "{err}");
        // Consistent state: the subscription survived and still delivers.
        assert_eq!(svc.subscription_count(), 1);
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK"),
            1
        );
        assert!(rx.try_recv().is_ok());
        // Unpin and the unsubscribe goes through.
        reg.delete(&sub_path.child("pin")).unwrap();
        svc.unsubscribe(&reg, &id).unwrap();
        assert_eq!(svc.subscription_count(), 0);
    }

    #[test]
    fn full_queue_drops_and_counts() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(2);
        let (id, rx) = svc.subscribe(&reg, "channel://slow", vec![], vec![]).unwrap();
        for i in 0..5 {
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), format!("m{i}"), "OK");
        }
        assert!(svc.dropped_count(&id) >= 1, "drops recorded");
        assert_eq!(rx.len(), 2, "queue bounded");
    }

    #[test]
    fn racing_consumer_never_sees_a_batch_id_twice() {
        // Regression for the full-queue duplicate-delivery bug: the old
        // retry path could enqueue the same batch twice when a consumer
        // freed space mid-retry (and never counted the successful retry).
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = Arc::new(EventService::new(Arc::new(Clock::manual())).with_queue_depth(2));
        let (_, rx) = svc.subscribe(&reg, "channel://racer", vec![], vec![]).unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let consumer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = std::collections::HashSet::new();
                let mut dup = None;
                loop {
                    match rx.try_recv() {
                        Ok(batch) => {
                            if !seen.insert(batch.id) {
                                dup = Some(batch.id);
                                break;
                            }
                        }
                        Err(_) => {
                            if stop.load(Ordering::Acquire) && rx.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                dup
            })
        };

        let publishers: Vec<_> = (0..2)
            .map(|t| {
                let svc = Arc::clone(&svc);
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        svc.publish(
                            EventType::Alert,
                            &ODataId::new("/redfish/v1/x"),
                            format!("t{t}-m{i}"),
                            "OK",
                        );
                    }
                })
            })
            .collect();
        for p in publishers {
            p.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let dup = consumer.join().unwrap();
        assert_eq!(dup, None, "a batch id was observed twice");
    }

    #[test]
    fn delivered_metric_counts_successful_retry() {
        // The retry that squeezes into a freed slot must count as delivered,
        // not silently succeed (or worse, be recorded as a drop).
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(1);
        let (id, rx) = svc.subscribe(&reg, "channel://tight", vec![], vec![]).unwrap();
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "a", "OK"),
            1
        );
        // Queue full now: this one drops (retry also fails, no consumer).
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "b", "OK"),
            0
        );
        assert_eq!(svc.dropped_count(&id), 1);
        // Drain and the next publish is delivered (and counted) again.
        rx.try_recv().unwrap();
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "c", "OK"),
            1
        );
        assert_eq!(svc.dropped_count(&id), 1);
    }

    #[test]
    fn lossy_subscriber_alert_fires_once_and_latches() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(2);
        let (slow_id, _slow_rx) = svc.subscribe(&reg, "channel://slow", vec![], vec![]).unwrap();
        // Watcher filtered to alerts about the slow subscription only, so
        // the flood below never fills its own queue.
        let sub_path = ODataId::new(top::SUBSCRIPTIONS).child(&slow_id);
        let (_, watch_rx) = svc
            .subscribe(&reg, "channel://watch", vec![EventType::Alert], vec![sub_path.clone()])
            .unwrap();

        // Flood without draining: drops accumulate past the queue depth.
        for i in 0..10 {
            svc.publish(
                EventType::ResourceUpdated,
                &ODataId::new("/redfish/v1/x"),
                format!("m{i}"),
                "OK",
            );
        }
        assert!(svc.dropped_count(&slow_id) > 2);
        assert_eq!(watch_rx.len(), 1, "exactly one latched alert");
        let alert = watch_rx.try_recv().unwrap();
        assert_eq!(alert.events[0].severity, "Warning");
        assert!(alert.events[0].message.contains(&slow_id));
        assert_eq!(alert.events[0].origin_of_condition.odata_id, sub_path);

        // Still latched: further losses never re-alert.
        for i in 0..10 {
            svc.publish(
                EventType::ResourceUpdated,
                &ODataId::new("/redfish/v1/x"),
                format!("n{i}"),
                "OK",
            );
        }
        assert_eq!(watch_rx.len(), 0, "alert latched");
    }

    #[test]
    fn disconnected_receiver_counts_drops() {
        let (reg, svc) = setup();
        let (id, rx) = svc.subscribe(&reg, "channel://gone", vec![], vec![]).unwrap();
        drop(rx);
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK");
        assert_eq!(svc.dropped_count(&id), 1);
    }

    #[test]
    fn timestamps_come_from_service_clock() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let clock = Arc::new(Clock::manual());
        let svc = EventService::new(Arc::clone(&clock));
        let (_, rx) = svc.subscribe(&reg, "channel://c", vec![], vec![]).unwrap();
        clock.advance_ms(777);
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK");
        assert_eq!(rx.try_recv().unwrap().events[0].event_timestamp, 777);
    }
}
