//! The OFMF event service.
//!
//! Clients subscribe by creating an `EventDestination`; the service fans
//! published records out to every matching subscription's bounded delivery
//! queue. Bounded queues (crossbeam) protect the OFMF from slow consumers:
//! when a queue is full the oldest batch is dropped and a drop counter is
//! bumped — the subscriber can detect gaps from event ids.

use crate::clock::Clock;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use ofmf_obs::{Counter, Histogram};
use parking_lot::RwLock;
use redfish_model::odata::ODataId;
use redfish_model::path::top;
use redfish_model::resources::events::{Event, EventDestination, EventRecord, EventType};
use redfish_model::resources::Resource;
use redfish_model::{RedfishError, RedfishResult, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default per-subscription queue depth.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

struct Subscription {
    id: String,
    dest: EventDestination,
    tx: Sender<Event>,
    dropped: AtomicU64,
    /// Set once the subscriber's losses have been announced as an `Alert`
    /// (fires a single time per subscription).
    drop_alerted: AtomicBool,
}

struct EventMetrics {
    /// `ofmf.events.fanout.latency_ns`
    fanout_latency: Arc<Histogram>,
    /// `ofmf.events.published.total` — fan-out invocations.
    published: Arc<Counter>,
    /// `ofmf.events.delivered.total` — successful queue deliveries.
    delivered: Arc<Counter>,
    /// `ofmf.events.dropped.total` — batches lost to slow/dead subscribers.
    dropped: Arc<Counter>,
}

fn event_metrics() -> &'static EventMetrics {
    static METRICS: OnceLock<EventMetrics> = OnceLock::new();
    METRICS.get_or_init(|| EventMetrics {
        fanout_latency: ofmf_obs::histogram("ofmf.events.fanout.latency_ns"),
        published: ofmf_obs::counter("ofmf.events.published.total"),
        delivered: ofmf_obs::counter("ofmf.events.delivered.total"),
        dropped: ofmf_obs::counter("ofmf.events.dropped.total"),
    })
}

/// The subscription-based event service.
pub struct EventService {
    clock: Arc<Clock>,
    subs: RwLock<HashMap<String, Arc<Subscription>>>,
    next_sub: AtomicU64,
    next_event: AtomicU64,
    queue_depth: usize,
}

impl EventService {
    /// New service using `clock` for record timestamps.
    pub fn new(clock: Arc<Clock>) -> Self {
        EventService {
            clock,
            subs: RwLock::new(HashMap::new()),
            next_sub: AtomicU64::new(1),
            next_event: AtomicU64::new(1),
            queue_depth: DEFAULT_QUEUE_DEPTH,
        }
    }

    /// Override the per-subscription queue depth (before subscribing).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Create a subscription. Registers the `EventDestination` resource in
    /// `reg` and returns `(subscription id, delivery receiver)`.
    pub fn subscribe(
        &self,
        reg: &Registry,
        destination: &str,
        event_types: Vec<EventType>,
        origin_resources: Vec<ODataId>,
    ) -> RedfishResult<(String, Receiver<Event>)> {
        let id = self.next_sub.fetch_add(1, Ordering::AcqRel).to_string();
        let subs_col = ODataId::new(top::SUBSCRIPTIONS);
        let dest = EventDestination::new(&subs_col, &id, destination, event_types, origin_resources);
        reg.create(&subs_col.child(&id), dest.to_value())?;
        let (tx, rx) = bounded(self.queue_depth);
        let sub = Arc::new(Subscription {
            id: id.clone(),
            dest,
            tx,
            dropped: AtomicU64::new(0),
            drop_alerted: AtomicBool::new(false),
        });
        self.subs.write().insert(id.clone(), sub);
        Ok((id, rx))
    }

    /// Delete a subscription (client unsubscribes or its queue is dead).
    pub fn unsubscribe(&self, reg: &Registry, id: &str) -> RedfishResult<()> {
        let removed = self.subs.write().remove(id);
        if removed.is_none() {
            return Err(RedfishError::NotFound(ODataId::new(top::SUBSCRIPTIONS).child(id)));
        }
        reg.delete(&ODataId::new(top::SUBSCRIPTIONS).child(id))?;
        Ok(())
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.read().len()
    }

    /// Batches dropped for subscription `id` due to a full queue.
    pub fn dropped_count(&self, id: &str) -> u64 {
        self.subs
            .read()
            .get(id)
            .map_or(0, |s| s.dropped.load(Ordering::Acquire))
    }

    /// Publish one record: build the batch and fan it out to every matching
    /// subscription. Returns the number of subscriptions it was delivered to.
    pub fn publish(
        &self,
        event_type: EventType,
        origin: &ODataId,
        message: impl Into<String>,
        severity: &str,
    ) -> usize {
        let event_id = self.next_event.fetch_add(1, Ordering::AcqRel);
        let record = EventRecord::new(event_type, event_id, origin, message, severity, self.clock.now_ms());
        self.fan_out(event_type, origin, vec![record])
    }

    /// Publish a pre-built batch of records sharing one origin/type (bulk
    /// agent forwarding).
    pub fn publish_batch(&self, event_type: EventType, origin: &ODataId, records: Vec<EventRecord>) -> usize {
        self.fan_out(event_type, origin, records)
    }

    fn fan_out(&self, event_type: EventType, origin: &ODataId, records: Vec<EventRecord>) -> usize {
        let metrics = event_metrics();
        metrics.published.inc();
        let _span = ofmf_obs::Trace::begin(&metrics.fanout_latency);
        let subs = self.subs.read();
        let mut delivered = 0;
        // Subscribers whose accumulated losses crossed the alert threshold
        // during this fan-out; announced after the read lock is released.
        let mut newly_lossy: Vec<String> = Vec::new();
        for sub in subs.values() {
            if !sub.dest.matches(event_type, origin) {
                continue;
            }
            let batch_id = self.next_event.fetch_add(1, Ordering::AcqRel);
            let mut ev = Event::batch(batch_id, records.clone());
            loop {
                match sub.tx.try_send(ev) {
                    Ok(()) => {
                        delivered += 1;
                        metrics.delivered.inc();
                        break;
                    }
                    Err(TrySendError::Full(back)) => {
                        // Drop the oldest batch to make room; count the loss.
                        let _ = sub.tx.try_send(back.clone()); // racing consumers may have freed space
                        if sub.tx.is_full() {
                            // Still full: discard oldest from the receiver side is
                            // impossible here (we only hold the sender), so drop
                            // the new batch and record it.
                            self.count_drop(sub, &mut newly_lossy);
                            break;
                        }
                        ev = back;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.count_drop(sub, &mut newly_lossy);
                        break;
                    }
                }
            }
        }
        drop(subs);
        for id in newly_lossy {
            self.alert_lossy_subscriber(&id);
        }
        delivered
    }

    /// Record one lost batch; when the subscription's total losses first
    /// exceed its queue depth, mark it for a (one-time) alert.
    fn count_drop(&self, sub: &Subscription, newly_lossy: &mut Vec<String>) {
        let total = sub.dropped.fetch_add(1, Ordering::AcqRel) + 1;
        event_metrics().dropped.inc();
        if total > self.queue_depth as u64 && !sub.drop_alerted.swap(true, Ordering::AcqRel) {
            newly_lossy.push(sub.id.clone());
        }
    }

    /// Latched alert: published once per subscription, the first time its
    /// drop count exceeds the queue depth. Runs without the subscription
    /// lock held; re-entry into `fan_out` is safe and cannot recurse again
    /// for the same subscription because the latch is already set.
    fn alert_lossy_subscriber(&self, id: &str) {
        let origin = ODataId::new(top::SUBSCRIPTIONS).child(id);
        let dropped = self.dropped_count(id);
        ofmf_obs::global().ring().emit(
            ofmf_obs::Severity::Warning,
            "ofmf.events",
            format!(
                "subscription {id} is lossy: {dropped} batches dropped (queue depth {})",
                self.queue_depth
            ),
        );
        self.publish(
            EventType::Alert,
            &origin,
            format!("event subscription {id} dropped {dropped} batches; deliveries are lossy"),
            "Warning",
        );
    }

    /// Next event id the service will assign (diagnostics/tests).
    pub fn peek_next_event_id(&self) -> u64 {
        self.next_event.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::bootstrap;

    fn setup() -> (Registry, EventService) {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual()));
        (reg, svc)
    }

    #[test]
    fn subscribe_registers_resource_and_delivers() {
        let (reg, svc) = setup();
        let (id, rx) = svc.subscribe(&reg, "channel://c1", vec![], vec![]).unwrap();
        assert!(reg.exists(&ODataId::new(top::SUBSCRIPTIONS).child(&id)));
        let n = svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/CXL0"),
            "link down",
            "Critical",
        );
        assert_eq!(n, 1);
        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.events.len(), 1);
        assert_eq!(batch.events[0].severity, "Critical");
    }

    #[test]
    fn filters_route_only_matching_events() {
        let (reg, svc) = setup();
        let (_, rx_alerts) = svc
            .subscribe(
                &reg,
                "channel://a",
                vec![EventType::Alert],
                vec![ODataId::new("/redfish/v1/Fabrics/CXL0")],
            )
            .unwrap();
        let (_, rx_all) = svc.subscribe(&reg, "channel://b", vec![], vec![]).unwrap();
        svc.publish(
            EventType::ResourceAdded,
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Zones/z"),
            "zone",
            "OK",
        );
        svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/IB0/Switches/s"),
            "hot",
            "Warning",
        );
        svc.publish(
            EventType::Alert,
            &ODataId::new("/redfish/v1/Fabrics/CXL0/Switches/s"),
            "down",
            "Critical",
        );
        assert_eq!(rx_all.len(), 3);
        assert_eq!(rx_alerts.len(), 1);
        assert_eq!(rx_alerts.try_recv().unwrap().events[0].message, "down");
    }

    #[test]
    fn unsubscribe_removes_resource_and_stops_delivery() {
        let (reg, svc) = setup();
        let (id, _rx) = svc.subscribe(&reg, "channel://c", vec![], vec![]).unwrap();
        svc.unsubscribe(&reg, &id).unwrap();
        assert_eq!(svc.subscription_count(), 0);
        assert!(!reg.exists(&ODataId::new(top::SUBSCRIPTIONS).child(&id)));
        assert_eq!(
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK"),
            0
        );
        assert!(matches!(svc.unsubscribe(&reg, &id), Err(RedfishError::NotFound(_))));
    }

    #[test]
    fn full_queue_drops_and_counts() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(2);
        let (id, rx) = svc.subscribe(&reg, "channel://slow", vec![], vec![]).unwrap();
        for i in 0..5 {
            svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), format!("m{i}"), "OK");
        }
        assert!(svc.dropped_count(&id) >= 1, "drops recorded");
        assert_eq!(rx.len(), 2, "queue bounded");
    }

    #[test]
    fn lossy_subscriber_alert_fires_once_and_latches() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let svc = EventService::new(Arc::new(Clock::manual())).with_queue_depth(2);
        let (slow_id, _slow_rx) = svc.subscribe(&reg, "channel://slow", vec![], vec![]).unwrap();
        // Watcher filtered to alerts about the slow subscription only, so
        // the flood below never fills its own queue.
        let sub_path = ODataId::new(top::SUBSCRIPTIONS).child(&slow_id);
        let (_, watch_rx) = svc
            .subscribe(&reg, "channel://watch", vec![EventType::Alert], vec![sub_path.clone()])
            .unwrap();

        // Flood without draining: drops accumulate past the queue depth.
        for i in 0..10 {
            svc.publish(
                EventType::ResourceUpdated,
                &ODataId::new("/redfish/v1/x"),
                format!("m{i}"),
                "OK",
            );
        }
        assert!(svc.dropped_count(&slow_id) > 2);
        assert_eq!(watch_rx.len(), 1, "exactly one latched alert");
        let alert = watch_rx.try_recv().unwrap();
        assert_eq!(alert.events[0].severity, "Warning");
        assert!(alert.events[0].message.contains(&slow_id));
        assert_eq!(alert.events[0].origin_of_condition.odata_id, sub_path);

        // Still latched: further losses never re-alert.
        for i in 0..10 {
            svc.publish(
                EventType::ResourceUpdated,
                &ODataId::new("/redfish/v1/x"),
                format!("n{i}"),
                "OK",
            );
        }
        assert_eq!(watch_rx.len(), 0, "alert latched");
    }

    #[test]
    fn disconnected_receiver_counts_drops() {
        let (reg, svc) = setup();
        let (id, rx) = svc.subscribe(&reg, "channel://gone", vec![], vec![]).unwrap();
        drop(rx);
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK");
        assert_eq!(svc.dropped_count(&id), 1);
    }

    #[test]
    fn timestamps_come_from_service_clock() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let clock = Arc::new(Clock::manual());
        let svc = EventService::new(Arc::clone(&clock));
        let (_, rx) = svc.subscribe(&reg, "channel://c", vec![], vec![]).unwrap();
        clock.advance_ms(777);
        svc.publish(EventType::Alert, &ODataId::new("/redfish/v1/x"), "m", "OK");
        assert_eq!(rx.try_recv().unwrap().events[0].event_timestamp, 777);
    }
}
