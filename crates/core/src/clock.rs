//! The service clock: a monotonic millisecond counter.
//!
//! Tests drive it manually; servers advance it from wall time. Keeping it
//! explicit (instead of calling `Instant::now()` everywhere) makes every
//! timestamped artifact — events, telemetry windows, session ages —
//! deterministic under test.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic millisecond clock shared by all OFMF services.
#[derive(Debug)]
pub struct Clock {
    ms: AtomicU64,
    origin: Instant,
    wall_driven: bool,
    /// Offset added to every reading. A restarted OFMF resumes its
    /// timeline from the last `ClockMark` journaled before the crash
    /// ([`Clock::resume_from`]), so restored session deadlines and event
    /// timestamps stay on the original axis instead of restarting at 0.
    base: AtomicU64,
}

impl Clock {
    /// A manual clock starting at zero (deterministic tests).
    pub fn manual() -> Self {
        Clock {
            ms: AtomicU64::new(0),
            origin: Instant::now(),
            wall_driven: false,
            base: AtomicU64::new(0),
        }
    }

    /// A wall-driven clock: `now_ms` reflects elapsed real time.
    pub fn wall() -> Self {
        Clock {
            ms: AtomicU64::new(0),
            origin: Instant::now(),
            wall_driven: true,
            base: AtomicU64::new(0),
        }
    }

    /// Current time in milliseconds since service start (plus any resumed
    /// base).
    pub fn now_ms(&self) -> u64 {
        let base = self.base.load(Ordering::Acquire);
        let elapsed = if self.wall_driven {
            u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
        } else {
            self.ms.load(Ordering::Acquire)
        };
        base.saturating_add(elapsed)
    }

    /// Resume the timeline at (at least) `base_ms`: readings never go
    /// below the highest base ever supplied. Called during WAL replay with
    /// the last journaled timestamp so the clock continues the pre-crash
    /// timeline rather than rewinding to zero.
    pub fn resume_from(&self, base_ms: u64) {
        self.base.fetch_max(base_ms, Ordering::AcqRel);
    }

    /// Advance a manual clock by `delta_ms`. No-op on wall clocks (they
    /// advance themselves).
    pub fn advance_ms(&self, delta_ms: u64) {
        if !self.wall_driven {
            self.ms.fetch_add(delta_ms, Ordering::AcqRel);
        }
    }

    /// Wait `delta_ms` of service time: sleeps on wall clocks, advances the
    /// counter on manual clocks. Retry backoffs use this so simulated runs
    /// are instantaneous yet observe the same timeline as real ones.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn wait_ms(&self, delta_ms: u64) {
        // Even the manual-clock branch counts: code that waits while holding
        // a stripe lock is a hazard regardless of which clock backs the run.
        #[cfg(feature = "lockcheck")]
        parking_lot::blocking_op("clock.wait_ms");
        if self.wall_driven {
            std::thread::sleep(std::time::Duration::from_millis(delta_ms));
        } else {
            self.ms.fetch_add(delta_ms, Ordering::AcqRel);
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::manual()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = Clock::manual();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(150);
        assert_eq!(c.now_ms(), 150);
        c.advance_ms(1);
        assert_eq!(c.now_ms(), 151);
    }

    #[test]
    fn resume_from_offsets_the_timeline() {
        let c = Clock::manual();
        c.advance_ms(10);
        c.resume_from(5_000);
        assert_eq!(c.now_ms(), 5_010, "base added to elapsed time");
        // The base is monotonic: a lower resume never rewinds.
        c.resume_from(100);
        assert_eq!(c.now_ms(), 5_010);
        c.advance_ms(90);
        assert_eq!(c.now_ms(), 5_100);
    }

    #[test]
    fn wall_clock_advances_on_its_own() {
        let c = Clock::wall();
        let a = c.now_ms();
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(c.now_ms() >= a + 4);
        // advance_ms is a no-op for wall clocks
        c.advance_ms(1_000_000);
        assert!(c.now_ms() < 1_000_000);
    }
}
