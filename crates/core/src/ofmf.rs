//! The [`Ofmf`] facade: the central manager clients and the Composability
//! Layer program against.
//!
//! Owns the unified Redfish tree and all services; routes north-bound
//! requests (GET/POST/PATCH/DELETE on tree paths) and forwards fabric
//! mutations to the responsible Agent. Implements the agent lifecycle:
//! registration (discover + mount), heartbeat-based liveness, event and
//! telemetry forwarding, and unregistration (unmount).

use crate::agent::{op_from_value, op_to_value, Agent, AgentInfo, AgentOp, AgentResponse};
use crate::clock::Clock;
use crate::events::{event_type_from_label, EventService};
use crate::sessions::SessionService;
use crate::supervisor::{self, AgentSupervisor, BreakerState, SupervisorConfig};
use crate::tasks::TaskService;
use crate::telemetry::TelemetryService;
use crate::tree;
use ofmf_wal::{Wal, WalRecord};
use parking_lot::{Mutex, RwLock};
use redfish_model::odata::{ETag, ODataId};
use redfish_model::path::{fabric_id_of, top};
use redfish_model::resources::events::EventType;
use redfish_model::{RedfishError, RedfishResult, Registry};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Heartbeats an agent may miss before being declared down.
pub const MAX_MISSED_HEARTBEATS: u32 = 3;

struct TreeOpMetrics {
    /// `ofmf.tree.<op>.latency_ns`
    get: Arc<ofmf_obs::Histogram>,
    patch: Arc<ofmf_obs::Histogram>,
    post: Arc<ofmf_obs::Histogram>,
    delete: Arc<ofmf_obs::Histogram>,
}

fn tree_metrics() -> &'static TreeOpMetrics {
    static METRICS: std::sync::OnceLock<TreeOpMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| TreeOpMetrics {
        get: ofmf_obs::histogram("ofmf.tree.get.latency_ns"),
        patch: ofmf_obs::histogram("ofmf.tree.patch.latency_ns"),
        post: ofmf_obs::histogram("ofmf.tree.post.latency_ns"),
        delete: ofmf_obs::histogram("ofmf.tree.delete.latency_ns"),
    })
}

struct AgentEntry {
    agent: Arc<dyn Agent>,
    info: AgentInfo,
    alive: bool,
    missed: u32,
    /// The resilience layer every op to this agent goes through.
    supervisor: Arc<AgentSupervisor>,
    /// Every id the agent mounted at registration — the subtree degraded to
    /// `Health=Critical` while the agent is down (including devices mounted
    /// outside `/Fabrics/{id}`, e.g. under `/Systems` or `/Chassis`).
    mounted: Vec<ODataId>,
}

/// The OpenFabrics Management Framework.
pub struct Ofmf {
    /// The unified Redfish tree.
    pub registry: Arc<Registry>,
    /// The service clock.
    pub clock: Arc<Clock>,
    /// Event service.
    pub events: Arc<EventService>,
    /// Telemetry service.
    pub telemetry: Arc<TelemetryService>,
    /// Task service.
    pub tasks: Arc<TaskService>,
    /// Session service.
    pub sessions: Arc<SessionService>,
    agents: RwLock<HashMap<String, AgentEntry>>,
    member_seq: AtomicU64,
    seed: u64,
    sup_cfg: SupervisorConfig,
    /// Internal journal subscription: every published event is drained into
    /// the Redfish event log by [`Ofmf::flush_event_log`].
    journal: crossbeam::channel::Receiver<redfish_model::resources::events::EventEnvelope>,
    journal_seq: AtomicU64,
    /// The durability write-ahead log, when this OFMF was booted with one.
    wal: Option<Arc<Wal>>,
    /// Whether this boot replayed state from a WAL (vs a fresh bootstrap).
    recovered: bool,
    /// Composition records replayed from the WAL, awaiting the Composability
    /// Layer's [`reconciliation`](Ofmf::take_recovered_compose).
    recovered_compose: Mutex<Vec<WalRecord>>,
    /// Teardown ops replayed from the WAL for fabrics whose agents have not
    /// re-registered yet; handed to each agent's supervisor on registration.
    recovered_teardowns: Mutex<HashMap<String, Vec<AgentOp>>>,
    /// Extra snapshot records from higher layers (the composer's live
    /// compositions); see [`Ofmf::set_snapshot_provider`].
    snapshot_provider: RwLock<Option<SnapshotProvider>>,
    /// Clock reading at the last journaled `ClockMark` (rate limit).
    last_clock_mark: AtomicU64,
}

/// Callback supplying extra snapshot records from higher layers (the
/// composer's live compositions); see [`Ofmf::set_snapshot_provider`].
pub type SnapshotProvider = Box<dyn Fn() -> Vec<WalRecord> + Send + Sync>;

/// Maximum entries retained in the event log (oldest are evicted —
/// `OverWritePolicy: WrapsWhenFull`).
pub const EVENT_LOG_CAP: usize = 512;

/// Live-log size past which [`Ofmf::poll`] writes a compacting snapshot.
pub const WAL_SNAPSHOT_THRESHOLD_BYTES: u64 = 4 * 1024 * 1024;

impl Ofmf {
    /// Boot an OFMF: bootstrap the tree and wire the services together.
    ///
    /// `credentials` is the username→password table for the session service.
    pub fn new(uuid: &str, credentials: HashMap<String, String>, seed: u64) -> Arc<Self> {
        let clock = Arc::new(Clock::manual());
        Self::with_clock(uuid, credentials, seed, clock)
    }

    /// Boot with a wall-driven clock (servers).
    pub fn new_wall(uuid: &str, credentials: HashMap<String, String>, seed: u64) -> Arc<Self> {
        Self::with_clock(uuid, credentials, seed, Arc::new(Clock::wall()))
    }

    /// Boot with an explicit supervisor policy (chaos suites shrink the
    /// cooldown/retry budget to keep scenarios short).
    pub fn new_with_supervisor(
        uuid: &str,
        credentials: HashMap<String, String>,
        seed: u64,
        sup_cfg: SupervisorConfig,
    ) -> Arc<Self> {
        let mut o = Self::with_clock(uuid, credentials, seed, Arc::new(Clock::manual()));
        // Fresh Arc, no other handles yet: safe to adjust the policy.
        if let Some(inner) = Arc::get_mut(&mut o) {
            inner.sup_cfg = sup_cfg;
        }
        o
    }

    /// Boot against a durability journal (manual clock). An empty journal
    /// behaves exactly like [`Ofmf::new`] except every control-plane
    /// mutation is journaled; a non-empty one is replayed: the tree,
    /// sessions, subscriptions, clock baseline, and pending teardowns all
    /// resume where the previous process stopped. Call
    /// [`Ofmf::finish_recovery`] after re-registering agents.
    pub fn with_wal(
        uuid: &str,
        credentials: HashMap<String, String>,
        seed: u64,
        wal: Arc<Wal>,
    ) -> std::io::Result<Arc<Self>> {
        Self::boot(uuid, credentials, seed, Arc::new(Clock::manual()), Some(wal))
    }

    /// [`Ofmf::with_wal`] with an explicit clock (wall-driven for daemons).
    pub fn with_wal_clock(
        uuid: &str,
        credentials: HashMap<String, String>,
        seed: u64,
        wal: Arc<Wal>,
        clock: Arc<Clock>,
    ) -> std::io::Result<Arc<Self>> {
        Self::boot(uuid, credentials, seed, clock, Some(wal))
    }

    fn with_clock(uuid: &str, credentials: HashMap<String, String>, seed: u64, clock: Arc<Clock>) -> Arc<Self> {
        // ofmf-lint: allow(no-panic-path, "without a WAL there is no I/O in the boot path; it cannot fail")
        Self::boot(uuid, credentials, seed, clock, None).expect("boot without a WAL cannot fail")
    }

    fn boot(
        uuid: &str,
        credentials: HashMap<String, String>,
        seed: u64,
        clock: Arc<Clock>,
        wal: Option<Arc<Wal>>,
    ) -> std::io::Result<Arc<Self>> {
        let registry = Arc::new(Registry::new());
        let events = Arc::new(EventService::new(Arc::clone(&clock)));
        let telemetry = Arc::new(TelemetryService::new(Arc::clone(&clock)));
        let tasks = Arc::new(TaskService::new(Arc::clone(&clock)));
        let sessions = Arc::new(SessionService::new(Arc::clone(&clock), credentials, seed));

        // Replay whatever the journal holds. An empty journal (or no journal
        // at all) falls through to the fresh-bootstrap path.
        let replayed: Option<Vec<WalRecord>> = match &wal {
            Some(w) => {
                let r = w.replay()?;
                (!r.records.is_empty()).then_some(r.records)
            }
            None => None,
        };

        let mut recovered_compose: Vec<WalRecord> = Vec::new();
        let mut recovered_teardowns: HashMap<String, Vec<AgentOp>> = HashMap::new();

        let journal = if let Some(records) = &replayed {
            // ---- restored boot: rebuild every service from the journal ----
            redfish_model::replay::apply_all(&registry, records);
            let mut max_ms = 0u64;
            // token → (session id, user, last-used); final state wins.
            let mut live_sessions: HashMap<String, (String, String, u64)> = HashMap::new();
            // subscription id → (destination, type names, origin paths).
            let mut live_subs: HashMap<String, (String, Vec<String>, Vec<String>)> = HashMap::new();
            for rec in records {
                match rec {
                    WalRecord::ClockMark { now_ms } => max_ms = max_ms.max(*now_ms),
                    WalRecord::SessionLogin {
                        token,
                        session_id,
                        user,
                        last_used_ms,
                    } => {
                        max_ms = max_ms.max(*last_used_ms);
                        live_sessions.insert(token.clone(), (session_id.clone(), user.clone(), *last_used_ms));
                    }
                    WalRecord::SessionTouch { token, last_used_ms } => {
                        max_ms = max_ms.max(*last_used_ms);
                        if let Some(live) = live_sessions.get_mut(token) {
                            live.2 = *last_used_ms;
                        }
                    }
                    WalRecord::SessionEnd { token } => {
                        live_sessions.remove(token);
                    }
                    WalRecord::Subscribe {
                        id,
                        destination,
                        event_types,
                        origins,
                    } => {
                        live_subs.insert(id.clone(), (destination.clone(), event_types.clone(), origins.clone()));
                    }
                    WalRecord::Unsubscribe { id } => {
                        live_subs.remove(id);
                    }
                    WalRecord::Teardown { fabric, op } => {
                        if let Some(op) = op_from_value(op) {
                            recovered_teardowns.entry(fabric.clone()).or_default().push(op);
                        }
                    }
                    WalRecord::TeardownDrained { fabric } => {
                        recovered_teardowns.remove(fabric);
                    }
                    WalRecord::ComposeIntent { .. }
                    | WalRecord::BindDone { .. }
                    | WalRecord::ComposeCommit { .. }
                    | WalRecord::ComposeAbort { .. }
                    | WalRecord::Decompose { .. }
                    | WalRecord::BindAdded { .. }
                    | WalRecord::ComposeLive { .. } => recovered_compose.push(rec.clone()),
                    // Registry records were applied by `apply_all` above.
                    _ => {}
                }
            }
            // Resume the pre-crash timeline before any service reads the
            // clock, so restored session deadlines stay meaningful.
            clock.resume_from(max_ms);
            let mut tokens: Vec<&String> = live_sessions.keys().collect();
            tokens.sort();
            for token in tokens {
                // ofmf-lint: allow(no-panic-path, "key came from live_sessions.keys() above")
                let (sid, user, ms) = &live_sessions[token];
                sessions.restore_session(token, sid, user, *ms);
            }
            let mut journal_rx = None;
            let mut sub_ids: Vec<&String> = live_subs.keys().collect();
            sub_ids.sort_by_key(|s| s.parse::<u64>().unwrap_or(u64::MAX));
            for id in sub_ids {
                // ofmf-lint: allow(no-panic-path, "key came from live_subs.keys() above")
                let (dest, types, origins) = &live_subs[id];
                let rx = events.restore_subscription(
                    id,
                    dest,
                    types.iter().filter_map(|s| event_type_from_label(s)).collect(),
                    origins.iter().map(ODataId::new).collect(),
                );
                if dest == "internal://event-log" && journal_rx.is_none() {
                    journal_rx = Some(rx);
                }
            }
            // The internal event-log subscription is created on every fresh
            // boot, so it is always in the journal; the fallback covers only
            // hand-built journals (tests, tooling).
            journal_rx.unwrap_or_else(|| events.restore_subscription("0", "internal://event-log", vec![], vec![]))
        } else {
            // ---- fresh boot: journal from the very first create, so the
            // bootstrap itself is replayable ----
            registry.set_journal(wal.clone());
            sessions.set_journal(wal.clone());
            events.set_journal(wal.clone());
            // ofmf-lint: allow(no-panic-path, "bootstrap of an empty registry only inserts fresh ids; Conflict is impossible")
            tree::bootstrap(&registry, uuid).expect("bootstrap on fresh registry cannot fail");
            let (_journal_id, journal) = events
                .subscribe(&registry, "internal://event-log", vec![], vec![])
                // ofmf-lint: allow(no-panic-path, "first subscription on a freshly bootstrapped tree cannot collide")
                .expect("journal subscription on a fresh tree");
            journal
        };

        let recovered = replayed.is_some();
        if recovered {
            // Journaling was off during replay (records must not re-journal
            // themselves); attach now that the tree is rebuilt.
            registry.set_journal(wal.clone());
            sessions.set_journal(wal.clone());
            events.set_journal(wal.clone());
        }
        let member_floor = if recovered { member_seq_floor(&registry) } else { 1 };
        let journal_floor = if recovered { journal_seq_floor(&registry) } else { 1 };

        Ok(Arc::new(Ofmf {
            registry,
            clock,
            events,
            telemetry,
            tasks,
            sessions,
            agents: RwLock::new(HashMap::new()),
            member_seq: AtomicU64::new(member_floor),
            seed,
            sup_cfg: SupervisorConfig::default(),
            journal,
            journal_seq: AtomicU64::new(journal_floor),
            wal,
            recovered,
            recovered_compose: Mutex::new(recovered_compose),
            recovered_teardowns: Mutex::new(recovered_teardowns),
            snapshot_provider: RwLock::new(None),
            last_clock_mark: AtomicU64::new(0),
        }))
    }

    /// Whether this boot replayed state from a WAL.
    pub fn was_recovered(&self) -> bool {
        self.recovered
    }

    /// The attached durability journal, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Append a record to the durability journal, if one is attached.
    /// Infallible: I/O errors are absorbed into `ofmf.wal.errors.total`
    /// (the in-memory mutation the record describes has already happened).
    pub fn wal_record(&self, rec: WalRecord) {
        if let Some(w) = &self.wal {
            w.record(&rec);
        }
    }

    /// Composition records replayed from the WAL, in journal order. The
    /// Composability Layer drains these once on boot to rebuild its state
    /// and compensate half-bound compositions.
    pub fn take_recovered_compose(&self) -> Vec<WalRecord> {
        std::mem::take(&mut *self.recovered_compose.lock())
    }

    /// Install the higher-layer snapshot hook: called (under the WAL's
    /// snapshot lock) to collect extra records — the composer's live
    /// compositions — into each snapshot.
    pub fn set_snapshot_provider(&self, provider: Option<SnapshotProvider>) {
        *self.snapshot_provider.write() = provider;
    }

    /// Write a compacted snapshot of the full control-plane state and
    /// truncate the live log. Returns the number of records written (0
    /// without a WAL).
    pub fn write_snapshot(&self) -> std::io::Result<usize> {
        match &self.wal {
            Some(w) => w.snapshot_with(|| self.collect_snapshot_records()),
            None => Ok(0),
        }
    }

    fn collect_snapshot_records(&self) -> Vec<WalRecord> {
        let mut recs = vec![WalRecord::ClockMark {
            now_ms: self.clock.now_ms(),
        }];
        recs.extend(self.registry.snapshot_records());
        recs.extend(self.sessions.snapshot_records());
        recs.extend(self.events.snapshot_records());
        // Undrained teardown compensation survives compaction: ops held by
        // live supervisors, plus ops recovered for still-absent agents.
        for (fid, entry) in self.agents.read().iter() {
            for op in entry.supervisor.peek_journal() {
                recs.push(WalRecord::Teardown {
                    fabric: fid.clone(),
                    op: op_to_value(&op),
                });
            }
        }
        for (fid, ops) in self.recovered_teardowns.lock().iter() {
            for op in ops {
                recs.push(WalRecord::Teardown {
                    fabric: fid.clone(),
                    op: op_to_value(op),
                });
            }
        }
        if let Some(provider) = self.snapshot_provider.read().as_ref() {
            recs.extend(provider());
        }
        // Compose records nobody reconciled yet pass through verbatim.
        recs.extend(self.recovered_compose.lock().iter().cloned());
        recs
    }

    /// Post-replay reconciliation, called after agents have re-registered:
    /// every fabric in the replayed tree whose agent did NOT come back is
    /// degraded (`UnavailableOffline`/`Critical`, the same posture a
    /// heartbeat loss produces) and announced with a Critical alert.
    pub fn finish_recovery(&self) {
        let fabrics_col = ODataId::new(top::FABRICS);
        let Ok(members) = self.registry.members(&fabrics_col) else {
            return;
        };
        let dead: Vec<ODataId> = {
            let agents = self.agents.read();
            members
                .into_iter()
                .filter(|m| {
                    let fid = m.as_str().rsplit('/').next().unwrap_or("");
                    !agents.contains_key(fid)
                })
                .collect()
        };
        for fabric in dead {
            for id in self.registry.ids_under(&fabric) {
                let _ = self.registry.patch(
                    &id,
                    &json!({"Status": {"State": "UnavailableOffline", "Health": "Critical"}}),
                    None,
                );
            }
            self.events.publish(
                EventType::Alert,
                &fabric,
                format!("fabric {} has no agent after recovery; marked unavailable", fabric),
                "Critical",
            );
        }
    }

    /// Drain the internal journal into `LogEntry` resources under the OFMF
    /// manager's event log, evicting the oldest entries beyond
    /// [`EVENT_LOG_CAP`]. Returns the number of entries written. Called by
    /// [`Ofmf::poll`]; safe to call any time.
    pub fn flush_event_log(&self) -> usize {
        use redfish_model::resources::{LogEntry, Resource};
        let entries_col = ODataId::new(top::EVENT_LOG_ENTRIES);
        let mut written = 0;
        while let Ok(batch) = self.journal.try_recv() {
            for rec in batch.events.iter() {
                let seq = self.journal_seq.fetch_add(1, Ordering::AcqRel);
                let entry = LogEntry::event(
                    &entries_col,
                    &seq.to_string(),
                    &rec.severity,
                    &rec.message,
                    &rec.message_id,
                    &rec.origin_of_condition.odata_id,
                    rec.event_timestamp,
                );
                if self
                    .registry
                    .create(&entries_col.child(&seq.to_string()), entry.to_value())
                    .is_ok()
                {
                    written += 1;
                }
            }
        }
        if written > 0 {
            if let Ok(members) = self.registry.members(&entries_col) {
                if members.len() > EVENT_LOG_CAP {
                    // ofmf-lint: allow(no-panic-path, "guard above ensures len > EVENT_LOG_CAP, so the range end is in bounds")
                    for old in &members[..members.len() - EVENT_LOG_CAP] {
                        let _ = self.registry.delete(old);
                    }
                }
            }
        }
        written
    }

    /// Allocate a collection-unique member id (used when clients POST
    /// without an `Id`).
    pub fn next_member_id(&self, prefix: &str) -> String {
        format!("{prefix}{}", self.member_seq.fetch_add(1, Ordering::AcqRel))
    }

    // ---------------------------------------------------------------- agents

    /// Register an agent: discover its inventory, mount it into the tree,
    /// and announce the new fabric. Fails if the fabric id is taken.
    pub fn register_agent(&self, agent: Arc<dyn Agent>) -> RedfishResult<AgentInfo> {
        let info = agent.info();
        {
            let agents = self.agents.read();
            if agents.contains_key(&info.fabric_id) {
                return Err(RedfishError::AlreadyExists(
                    ODataId::new(top::FABRICS).child(&info.fabric_id),
                ));
            }
        }
        let inventory = catch_unwind(AssertUnwindSafe(|| agent.discover())).map_err(|_| {
            RedfishError::AgentUnavailable(format!("agent for fabric {} panicked during discovery", info.fabric_id))
        })?;
        tree::mount_subtree(&self.registry, &inventory)?;
        let mounted: Vec<ODataId> = inventory.iter().map(|(id, _)| id.clone()).collect();
        let sup = Arc::new(AgentSupervisor::new(
            &info.fabric_id,
            Arc::clone(&self.clock),
            self.sup_cfg,
            supervisor::derive_seed(self.seed, &info.fabric_id),
        ));
        self.agents.write().insert(
            info.fabric_id.clone(),
            AgentEntry {
                agent,
                info: info.clone(),
                alive: true,
                missed: 0,
                supervisor: sup,
                mounted,
            },
        );
        self.events.publish(
            EventType::ResourceAdded,
            &ODataId::new(top::FABRICS).child(&info.fabric_id),
            format!("fabric {} registered ({})", info.fabric_id, info.technology),
            "OK",
        );
        // Teardown compensation recovered from the WAL for this fabric:
        // hand it to the fresh supervisor and replay it against the
        // newly-registered (live) agent right away.
        let pending = self.recovered_teardowns.lock().remove(&info.fabric_id);
        if let Some(ops) = pending {
            let handles = {
                let agents = self.agents.read();
                agents
                    .get(&info.fabric_id)
                    .map(|e| (Arc::clone(&e.agent), Arc::clone(&e.supervisor)))
            };
            if let Some((agent, sup)) = handles {
                for op in &ops {
                    sup.journal_teardown(op);
                }
                self.replay_journal(&info.fabric_id, &agent, &sup);
            }
        }
        Ok(info)
    }

    /// Unregister an agent and unmount its subtree.
    pub fn unregister_agent(&self, fabric_id: &str) -> RedfishResult<usize> {
        let removed = self.agents.write().remove(fabric_id);
        if removed.is_none() {
            return Err(RedfishError::NotFound(ODataId::new(top::FABRICS).child(fabric_id)));
        }
        let n = tree::unmount_fabric(&self.registry, fabric_id);
        self.events.publish(
            EventType::ResourceRemoved,
            &ODataId::new(top::FABRICS).child(fabric_id),
            format!("fabric {fabric_id} unregistered"),
            "OK",
        );
        Ok(n)
    }

    /// Registered fabric ids.
    pub fn fabric_ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.agents.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Identity of every registered agent, sorted by fabric id.
    pub fn agent_infos(&self) -> Vec<AgentInfo> {
        let mut v: Vec<AgentInfo> = self.agents.read().values().map(|e| e.info.clone()).collect();
        v.sort_by(|a, b| a.fabric_id.cmp(&b.fabric_id));
        v
    }

    /// Whether an agent is currently considered alive.
    pub fn agent_alive(&self, fabric_id: &str) -> bool {
        self.agents.read().get(fabric_id).is_some_and(|e| e.alive)
    }

    /// Forward an operation to the agent owning `fabric_id` through its
    /// supervisor (breaker admission, bounded retry, panic containment),
    /// then commit the response (upserts/removals) to the tree and announce
    /// changes.
    ///
    /// While the agent is down, teardown ops (`DeleteZone`/`Disconnect`)
    /// are journaled for replay on recovery before the error is returned,
    /// so compensation work is never lost.
    pub fn apply(&self, fabric_id: &str, op: &AgentOp) -> RedfishResult<AgentResponse> {
        let (agent, sup, alive) = {
            let agents = self.agents.read();
            let entry = agents
                .get(fabric_id)
                .ok_or_else(|| RedfishError::NotFound(ODataId::new(top::FABRICS).child(fabric_id)))?;
            (Arc::clone(&entry.agent), Arc::clone(&entry.supervisor), entry.alive)
        };
        if !alive {
            if supervisor::is_teardown(op) {
                sup.journal_teardown(op);
                self.wal_record(WalRecord::Teardown {
                    fabric: fabric_id.to_string(),
                    op: op_to_value(op),
                });
            }
            return Err(sup.circuit_open_error());
        }
        // Never hold the agents lock across the agent call.
        let result = sup.dispatch(&agent, op);
        self.publish_breaker_transitions(fabric_id, &sup);
        match result {
            Ok(resp) => {
                self.commit_response(&resp)?;
                Ok(resp)
            }
            Err(e) => {
                if supervisor::is_teardown(op)
                    && matches!(e, RedfishError::AgentUnavailable(_) | RedfishError::CircuitOpen { .. })
                {
                    sup.journal_teardown(op);
                    self.wal_record(WalRecord::Teardown {
                        fabric: fabric_id.to_string(),
                        op: op_to_value(op),
                    });
                }
                Err(e)
            }
        }
    }

    /// Forward many operations concurrently, one result per input op in
    /// input order. Each op still goes through [`Ofmf::apply`] — per-agent
    /// supervisor admission, retries, breakers and deadlines all apply
    /// unchanged — but ops to *different* agents overlap in time, which is
    /// what makes batched route probing across 1k fabrics tractable.
    ///
    /// Work is distributed over scoped threads (capped at the host's
    /// parallelism, max 16) via an atomic work-stealing index, so results
    /// are deterministic in content and order regardless of interleaving.
    pub fn apply_parallel(&self, ops: &[(String, AgentOp)]) -> Vec<RedfishResult<AgentResponse>> {
        if ops.len() <= 1 {
            return ops.iter().map(|(f, op)| self.apply(f, op)).collect();
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(ops.len())
            .min(16);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut collected: Vec<Vec<(usize, RedfishResult<AgentResponse>)>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    s.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= ops.len() {
                                break;
                            }
                            // ofmf-lint: allow(no-panic-path, "the break above guarantees i < ops.len()")
                            let (fabric, op) = &ops[i];
                            out.push((i, self.apply(fabric, op)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                if let Ok(part) = h.join() {
                    collected.push(part);
                }
            }
        });
        let mut results: Vec<Option<RedfishResult<AgentResponse>>> = (0..ops.len()).map(|_| None).collect();
        for (i, r) in collected.into_iter().flatten() {
            // ofmf-lint: allow(no-panic-path, "workers only emit i < ops.len(), and results was sized to ops.len()")
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(RedfishError::Internal("parallel dispatch worker died".to_string()))))
            .collect()
    }

    /// Breaker state for a fabric's agent, if registered.
    pub fn breaker_state(&self, fabric_id: &str) -> Option<BreakerState> {
        self.agents.read().get(fabric_id).map(|e| e.supervisor.breaker_state())
    }

    /// Full breaker transition log for a fabric's agent (one formatted line
    /// per transition). Two runs with the same seed and schedule produce
    /// identical logs.
    pub fn breaker_log(&self, fabric_id: &str) -> Vec<String> {
        self.agents
            .read()
            .get(fabric_id)
            .map(|e| e.supervisor.transition_log())
            .unwrap_or_default()
    }

    /// Teardown ops journaled for a fabric, awaiting replay on recovery.
    pub fn journal_len(&self, fabric_id: &str) -> usize {
        self.agents
            .read()
            .get(fabric_id)
            .map(|e| e.supervisor.journal_len())
            .unwrap_or(0)
    }

    fn publish_breaker_transitions(&self, fabric_id: &str, sup: &AgentSupervisor) {
        let fabric = ODataId::new(top::FABRICS).child(fabric_id);
        for t in sup.take_pending_transitions() {
            let severity = if t.to == BreakerState::Open { "Critical" } else { "OK" };
            self.events.publish(
                EventType::StatusChange,
                &fabric,
                format!("fabric {fabric_id} circuit breaker: {t}"),
                severity,
            );
        }
    }

    fn commit_response(&self, resp: &AgentResponse) -> RedfishResult<()> {
        if !resp.upserts.is_empty() {
            tree::mount_subtree(&self.registry, &resp.upserts)?;
            for (id, _) in &resp.upserts {
                self.events
                    .publish(EventType::ResourceUpdated, id, "resource updated by agent", "OK");
            }
        }
        for id in &resp.removals {
            self.registry.delete_subtree(id);
            self.events
                .publish(EventType::ResourceRemoved, id, "resource removed by agent", "OK");
        }
        Ok(())
    }

    /// One poll cycle: heartbeat every agent, drain agent events into the
    /// tree + event service, and ingest telemetry. Returns the number of
    /// agent events processed.
    pub fn poll(&self) -> usize {
        let snapshot: Vec<(String, Arc<dyn Agent>)> = self
            .agents
            .read()
            .iter()
            .map(|(k, e)| (k.clone(), Arc::clone(&e.agent)))
            .collect();

        let mut processed = 0;
        for (fabric_id, agent) in snapshot {
            let beat = catch_unwind(AssertUnwindSafe(|| agent.heartbeat())).unwrap_or(false);
            if !beat {
                self.record_missed_heartbeat(&fabric_id);
                continue;
            }
            self.record_heartbeat_ok(&fabric_id);

            let events = catch_unwind(AssertUnwindSafe(|| agent.drain_events())).unwrap_or_default();
            // Coalesce adjacent events sharing (type, origin) into one
            // fan-out: chatty agents (N link flaps on one port) cost one
            // publish instead of N.
            let mut pending: Option<(EventType, ODataId, Vec<_>)> = None;
            for ev in events {
                processed += 1;
                for (id, patch) in &ev.patches {
                    let _ = self.registry.patch(id, patch, None);
                }
                for id in &ev.removals {
                    self.registry.delete_subtree(id);
                }
                let rec = self
                    .events
                    .record(ev.event_type, &ev.origin, ev.message.clone(), &ev.severity);
                match &mut pending {
                    Some((t, o, recs)) if *t == ev.event_type && *o == ev.origin => recs.push(rec),
                    _ => {
                        if let Some((t, o, recs)) = pending.take() {
                            self.events.publish_batch(t, &o, recs);
                        }
                        pending = Some((ev.event_type, ev.origin.clone(), vec![rec]));
                    }
                }
            }
            if let Some((t, o, recs)) = pending.take() {
                self.events.publish_batch(t, &o, recs);
            }

            let metrics = catch_unwind(AssertUnwindSafe(|| agent.sample_telemetry())).unwrap_or_default();
            if !metrics.is_empty() {
                self.telemetry.ingest(&metrics, &self.events);
            }
        }
        self.sessions.sweep_expired(&self.registry);
        self.flush_event_log();
        if let Some(w) = &self.wal {
            // Stamp the clock about once a second of service time, so a
            // crash replays to within a second of the pre-crash timeline.
            let now = self.clock.now_ms();
            let last = self.last_clock_mark.load(Ordering::Acquire);
            if now.saturating_sub(last) >= 1000
                && self
                    .last_clock_mark
                    .compare_exchange(last, now, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                w.record(&WalRecord::ClockMark { now_ms: now });
            }
            if w.log_bytes() > WAL_SNAPSHOT_THRESHOLD_BYTES {
                let _ = self.write_snapshot();
            }
        }
        processed
    }

    fn record_missed_heartbeat(&self, fabric_id: &str) {
        let (sup, mounted, shared, died) = {
            let mut agents = self.agents.write();
            let Some(entry) = agents.get_mut(fabric_id) else { return };
            entry.missed += 1;
            let died = entry.alive && entry.missed >= MAX_MISSED_HEARTBEATS;
            if died {
                entry.alive = false;
            }
            let sup = Arc::clone(&entry.supervisor);
            let mounted = entry.mounted.clone();
            // Resources other agents also mounted (e.g. shared compute
            // nodes) are not ours alone to degrade.
            let shared: std::collections::HashSet<ODataId> = if died {
                agents
                    .iter()
                    .filter(|(fid, _)| fid.as_str() != fabric_id)
                    .flat_map(|(_, e)| e.mounted.iter().cloned())
                    .collect()
            } else {
                Default::default()
            };
            (sup, mounted, shared, died)
        };
        if died {
            sup.force_open();
        } else {
            sup.on_heartbeat_missed();
        }
        self.publish_breaker_transitions(fabric_id, &sup);
        if died {
            self.degrade_subtree(fabric_id, &sup, &mounted, &shared);
            self.events.publish(
                EventType::Alert,
                &ODataId::new(top::FABRICS).child(fabric_id),
                format!(
                    "agent for fabric {fabric_id} missed {MAX_MISSED_HEARTBEATS} heartbeats; fabric marked unavailable"
                ),
                "Critical",
            );
        }
    }

    fn record_heartbeat_ok(&self, fabric_id: &str) {
        let (agent, sup, recovered) = {
            let mut agents = self.agents.write();
            let Some(entry) = agents.get_mut(fabric_id) else { return };
            entry.missed = 0;
            let recovered = !entry.alive;
            if recovered {
                entry.alive = true;
            }
            (Arc::clone(&entry.agent), Arc::clone(&entry.supervisor), recovered)
        };
        sup.on_heartbeat_ok();
        self.publish_breaker_transitions(fabric_id, &sup);
        if recovered {
            self.restore_subtree(fabric_id, &sup);
            self.replay_journal(fabric_id, &agent, &sup);
            self.events.publish(
                EventType::StatusChange,
                &ODataId::new(top::FABRICS).child(fabric_id),
                format!("agent for fabric {fabric_id} recovered"),
                "OK",
            );
        }
    }

    /// Degraded mode: mark everything the dead agent mounted
    /// `Health=Critical`/`State=UnavailableOffline`, remembering each
    /// resource's prior `Status` so recovery restores it verbatim. Documents
    /// are never deleted — reads keep serving last-known-good state.
    fn degrade_subtree(
        &self,
        fabric_id: &str,
        sup: &AgentSupervisor,
        mounted: &[ODataId],
        shared: &std::collections::HashSet<ODataId>,
    ) {
        let fabric = ODataId::new(top::FABRICS).child(fabric_id);
        let mut ids = self.registry.ids_under(&fabric);
        for id in mounted {
            if !id.as_str().starts_with(fabric.as_str()) && !shared.contains(id) && self.registry.exists(id) {
                ids.push(id.clone());
            }
        }
        let mut prior = Vec::with_capacity(ids.len());
        for id in ids {
            let Ok(stored) = self.registry.get(&id) else { continue };
            prior.push((id.clone(), stored.body.get("Status").cloned().unwrap_or(Value::Null)));
            let _ = self.registry.patch(
                &id,
                &json!({"Status": {"State": "UnavailableOffline", "Health": "Critical"}}),
                None,
            );
        }
        sup.set_degraded(prior);
    }

    /// Undo [`Ofmf::degrade_subtree`]: put back the exact pre-outage
    /// `Status` of every surviving resource (a `null` prior removes the key
    /// per RFC 7386 merge semantics).
    fn restore_subtree(&self, fabric_id: &str, sup: &AgentSupervisor) {
        for (id, prior_status) in sup.take_degraded() {
            if !self.registry.exists(&id) {
                continue;
            }
            let _ = self.registry.patch(&id, &json!({ "Status": prior_status }), None);
        }
        // The fabric root always comes back healthy — the agent just
        // heartbeated.
        let fabric = ODataId::new(top::FABRICS).child(fabric_id);
        let _ = self
            .registry
            .patch(&fabric, &json!({"Status": {"State": "Enabled", "Health": "OK"}}), None);
    }

    /// Replay teardown ops that failed while the agent was down. Ops that
    /// still fail are re-journaled for the next recovery.
    fn replay_journal(&self, fabric_id: &str, agent: &Arc<dyn Agent>, sup: &AgentSupervisor) {
        let ops = sup.take_journal();
        if !ops.is_empty() {
            // Drained-then-re-journaled ordering: the WAL fold (Teardown
            // appends, Drained clears) reproduces exactly the set that is
            // still pending after this replay.
            self.wal_record(WalRecord::TeardownDrained {
                fabric: fabric_id.to_string(),
            });
        }
        for op in ops {
            match sup.dispatch(agent, &op) {
                Ok(resp) => {
                    sup.count_replayed();
                    let _ = self.commit_response(&resp);
                }
                // The agent already forgot this resource (e.g. it rebooted):
                // drop the op and let the tree-side doc go via removal.
                Err(RedfishError::NotFound(id)) => {
                    self.registry.delete_subtree(&id);
                }
                Err(_) => {
                    sup.journal_teardown(&op);
                    self.wal_record(WalRecord::Teardown {
                        fabric: fabric_id.to_string(),
                        op: op_to_value(&op),
                    });
                }
            }
        }
        self.publish_breaker_transitions(fabric_id, sup);
    }

    // ------------------------------------------------------------ north-bound

    /// `GET` a resource (wire body with fresh ETag).
    pub fn get(&self, path: &ODataId) -> RedfishResult<(Value, ETag)> {
        let _span = ofmf_obs::Trace::begin(&tree_metrics().get);
        let mut tspan = ofmf_obs::child_span("ofmf.tree.get");
        tspan.annotate("path", path.as_str());
        let stored = self.registry.get(path)?;
        Ok((stored.wire_body(), stored.etag))
    }

    /// `GET` a resource as pre-serialized wire bytes, served from the
    /// registry's ETag-keyed cache when hot. The REST layer sends these
    /// straight to the socket without touching `serde_json`.
    pub fn get_raw(&self, path: &ODataId) -> RedfishResult<(std::sync::Arc<[u8]>, ETag)> {
        let _span = ofmf_obs::Trace::begin(&tree_metrics().get);
        let mut tspan = ofmf_obs::child_span("ofmf.tree.get_raw");
        tspan.annotate("path", path.as_str());
        self.registry.wire_bytes(path)
    }

    /// `PATCH` a resource. Publishes a `ResourceUpdated` event on success.
    pub fn patch(&self, path: &ODataId, body: &Value, if_match: Option<ETag>) -> RedfishResult<ETag> {
        let _span = ofmf_obs::Trace::begin(&tree_metrics().patch);
        let mut tspan = ofmf_obs::child_span("ofmf.tree.patch");
        tspan.annotate("path", path.as_str());
        let etag = self.registry.patch(path, body, if_match)?;
        self.events
            .publish(EventType::ResourceUpdated, path, "resource patched", "OK");
        Ok(etag)
    }

    /// `POST` to a collection. Routes by path:
    ///
    /// * `…/Fabrics/{f}/Zones` → [`AgentOp::CreateZone`]
    /// * `…/Fabrics/{f}/Connections` → [`AgentOp::Connect`]
    /// * anything else → create the document directly (client-owned
    ///   resources, e.g. annotations under Oem).
    ///
    /// Returns the id of the created resource.
    pub fn post(&self, collection: &ODataId, body: &Value) -> RedfishResult<ODataId> {
        let _span = ofmf_obs::Trace::begin(&tree_metrics().post);
        let mut tspan = ofmf_obs::child_span("ofmf.tree.post");
        tspan.annotate("path", collection.as_str());
        let path = collection.as_str();
        if let Some(fid) = fabric_id_of(path) {
            let fid = fid.to_string();
            if path.ends_with("/Zones") {
                return self.post_zone(&fid, collection, body);
            }
            if path.ends_with("/Connections") {
                return self.post_connection(&fid, collection, body);
            }
        }
        let id = body
            .get("Id")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| self.next_member_id("res"));
        let rid = collection.child(&id);
        self.registry.create(&rid, body.clone())?;
        self.events
            .publish(EventType::ResourceAdded, &rid, "resource created", "OK");
        Ok(rid)
    }

    fn post_zone(&self, fabric_id: &str, collection: &ODataId, body: &Value) -> RedfishResult<ODataId> {
        let endpoints = links_of(body, "Endpoints")?;
        if endpoints.is_empty() {
            return Err(RedfishError::BadRequest("zone requires Links.Endpoints".into()));
        }
        let zone_id = body
            .get("Id")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| self.next_member_id("zone"));
        let op = AgentOp::CreateZone {
            zone_id: zone_id.clone(),
            endpoints,
        };
        let resp = self.apply(fabric_id, &op)?;
        let rid = resp.primary.clone().unwrap_or_else(|| collection.child(&zone_id));
        self.events
            .publish(EventType::ResourceAdded, &rid, "zone created", "OK");
        Ok(rid)
    }

    fn post_connection(&self, fabric_id: &str, collection: &ODataId, body: &Value) -> RedfishResult<ODataId> {
        let initiators = links_of(body, "InitiatorEndpoints")?;
        let targets = links_of(body, "TargetEndpoints")?;
        let (Some(initiator), Some(target)) = (initiators.first(), targets.first()) else {
            return Err(RedfishError::BadRequest(
                "connection requires Links.InitiatorEndpoints and Links.TargetEndpoints".into(),
            ));
        };
        let zone = body
            .get("Zone")
            .and_then(|z| z.get("@odata.id"))
            .and_then(Value::as_str)
            .map(ODataId::new)
            .ok_or_else(|| RedfishError::BadRequest("connection requires a Zone link".into()))?;
        let size = body.get("Size").and_then(Value::as_u64).unwrap_or(1);
        let qos_gbps = body.get("BandwidthGbps").and_then(Value::as_f64).unwrap_or(0.0);
        if qos_gbps < 0.0 {
            return Err(RedfishError::BadRequest("BandwidthGbps must be non-negative".into()));
        }
        let connection_id = body
            .get("Id")
            .and_then(Value::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| self.next_member_id("conn"));
        let op = AgentOp::Connect {
            connection_id: connection_id.clone(),
            zone,
            initiator: initiator.clone(),
            target: target.clone(),
            size,
            qos_gbps,
        };
        let resp = self.apply(fabric_id, &op)?;
        let rid = resp.primary.clone().unwrap_or_else(|| collection.child(&connection_id));
        self.events
            .publish(EventType::ResourceAdded, &rid, "connection established", "OK");
        Ok(rid)
    }

    /// Invoke the `ComputerSystem.Reset` action on a system: maps the
    /// requested `ResetType` onto a `PowerState` transition and announces
    /// the change. (On real hardware the responsible agent would drive the
    /// BMC; the emulator transitions the resource directly.)
    pub fn reset_system(&self, system: &ODataId, reset_type: &str) -> RedfishResult<()> {
        let stored = self.registry.get(system)?;
        if stored.odata_type().is_none_or(|t| !t.starts_with("#ComputerSystem.")) {
            return Err(RedfishError::MethodNotAllowed(format!(
                "{system} is not a ComputerSystem"
            )));
        }
        let new_state = match reset_type {
            "On" => "On",
            "GracefulShutdown" | "ForceOff" => "Off",
            "GracefulRestart" | "ForceRestart" | "PowerCycle" => "On",
            "Nmi" => {
                // Diagnostic interrupt: state unchanged, event only.
                self.events
                    .publish(EventType::Alert, system, "NMI delivered".to_string(), "Warning");
                return Ok(());
            }
            other => return Err(RedfishError::BadRequest(format!("unsupported ResetType '{other}'"))),
        };
        self.registry.patch(system, &json!({"PowerState": new_state}), None)?;
        self.events.publish(
            EventType::StatusChange,
            system,
            format!("system reset ({reset_type}); power state now {new_state}"),
            "OK",
        );
        Ok(())
    }

    /// `DELETE` a resource. Fabric zones/connections route to the agent;
    /// anything else deletes from the tree directly.
    pub fn delete(&self, path: &ODataId) -> RedfishResult<()> {
        let _span = ofmf_obs::Trace::begin(&tree_metrics().delete);
        let mut tspan = ofmf_obs::child_span("ofmf.tree.delete");
        tspan.annotate("path", path.as_str());
        if let Some(fid) = fabric_id_of(path.as_str()) {
            let fid = fid.to_string();
            let parent = path.parent();
            let parent_str = parent.as_ref().map(|p| p.as_str()).unwrap_or("");
            if parent_str.ends_with("/Zones") {
                self.apply(&fid, &AgentOp::DeleteZone { zone: path.clone() })?;
                self.events
                    .publish(EventType::ResourceRemoved, path, "zone deleted", "OK");
                return Ok(());
            }
            if parent_str.ends_with("/Connections") {
                self.apply(
                    &fid,
                    &AgentOp::Disconnect {
                        connection: path.clone(),
                    },
                )?;
                self.events
                    .publish(EventType::ResourceRemoved, path, "connection removed", "OK");
                return Ok(());
            }
        }
        self.registry.delete(path)?;
        self.events
            .publish(EventType::ResourceRemoved, path, "resource deleted", "OK");
        Ok(())
    }
}

/// Resume floor for the member-id allocator after replay: one above the
/// highest numeric suffix of any `zone*`/`conn*`/`res*`/`z*`/`c*` member id
/// in the tree, so fresh allocations never collide with replayed resources.
fn member_seq_floor(registry: &Registry) -> u64 {
    let mut max = 0u64;
    registry.for_each(|id, _| {
        let leaf = id.as_str().rsplit('/').next().unwrap_or("");
        // Longest prefixes first: "zone5" must parse as zone+5, not z+"one5".
        for prefix in ["zone", "conn", "res", "z", "c"] {
            if let Some(suffix) = leaf.strip_prefix(prefix) {
                if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                    if let Ok(n) = suffix.parse::<u64>() {
                        max = max.max(n);
                    }
                    break;
                }
            }
        }
    });
    max.saturating_add(1)
}

/// Resume floor for the event-log sequence after replay.
fn journal_seq_floor(registry: &Registry) -> u64 {
    let mut max = 0u64;
    if let Ok(members) = registry.members(&ODataId::new(top::EVENT_LOG_ENTRIES)) {
        for m in members {
            if let Ok(n) = m.as_str().rsplit('/').next().unwrap_or("").parse::<u64>() {
                max = max.max(n);
            }
        }
    }
    max.saturating_add(1)
}

/// Extract `Links.{key}` (or top-level `{key}`) as a list of ids.
fn links_of(body: &Value, key: &str) -> RedfishResult<Vec<ODataId>> {
    let section = body.get("Links").and_then(|l| l.get(key)).or_else(|| body.get(key));
    let Some(arr) = section else { return Ok(Vec::new()) };
    let arr = arr
        .as_array()
        .ok_or_else(|| RedfishError::BadRequest(format!("{key} must be an array of links")))?;
    let mut out = Vec::with_capacity(arr.len());
    for v in arr {
        let id = v
            .get("@odata.id")
            .and_then(Value::as_str)
            .ok_or_else(|| RedfishError::BadRequest(format!("{key} entries must be @odata.id links")))?;
        out.push(ODataId::new(id));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NullAgent;

    fn ofmf() -> Arc<Ofmf> {
        Ofmf::new("uuid-test", HashMap::new(), 7)
    }

    fn fabric_inventory(fid: &str) -> Vec<(ODataId, Value)> {
        let fabric = ODataId::new(top::FABRICS).child(fid);
        vec![
            (
                fabric.clone(),
                json!({"@odata.type": "#Fabric.v1_3_0.Fabric", "Id": fid, "Name": fid, "Status": {"State": "Enabled", "Health": "OK"}}),
            ),
            (
                fabric.child("Endpoints"),
                json!({"@odata.type": "#EndpointCollection.EndpointCollection", "Name": "Endpoints", "Members": [], "Members@odata.count": 0}),
            ),
            (fabric.child("Endpoints").child("ep0"), json!({"Name": "ep0"})),
            (
                fabric.child("Zones"),
                json!({"@odata.type": "#ZoneCollection.ZoneCollection", "Name": "Zones", "Members": [], "Members@odata.count": 0}),
            ),
        ]
    }

    #[test]
    fn register_mounts_and_announces() {
        let o = ofmf();
        let (_, rx) = o.events.subscribe(&o.registry, "channel://c", vec![], vec![]).unwrap();
        let a = Arc::new(NullAgent::new("NULL0", fabric_inventory("NULL0")));
        o.register_agent(a).unwrap();
        assert!(o
            .registry
            .exists(&ODataId::new("/redfish/v1/Fabrics/NULL0/Endpoints/ep0")));
        assert_eq!(o.fabric_ids(), vec!["NULL0".to_string()]);
        let batch = rx.try_recv().unwrap();
        assert!(batch.events[0].message.contains("registered"));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let o = ofmf();
        o.register_agent(Arc::new(NullAgent::new("F0", vec![]))).unwrap();
        assert!(matches!(
            o.register_agent(Arc::new(NullAgent::new("F0", vec![]))),
            Err(RedfishError::AlreadyExists(_))
        ));
    }

    #[test]
    fn unregister_unmounts() {
        let o = ofmf();
        o.register_agent(Arc::new(NullAgent::new("F0", fabric_inventory("F0"))))
            .unwrap();
        let n = o.unregister_agent("F0").unwrap();
        assert_eq!(n, 4);
        assert!(o.fabric_ids().is_empty());
        assert!(matches!(o.unregister_agent("F0"), Err(RedfishError::NotFound(_))));
    }

    #[test]
    fn post_zone_routes_to_agent() {
        let o = ofmf();
        let agent = Arc::new(NullAgent::new("F0", fabric_inventory("F0")));
        o.register_agent(Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
        let zones = ODataId::new("/redfish/v1/Fabrics/F0/Zones");
        let rid = o
            .post(
                &zones,
                &json!({"Id": "z1", "Links": {"Endpoints": [{"@odata.id": "/redfish/v1/Fabrics/F0/Endpoints/ep0"}]}}),
            )
            .unwrap();
        assert_eq!(rid, zones.child("z1"));
        let ops = agent.applied_ops();
        assert!(
            matches!(&ops[0], AgentOp::CreateZone { zone_id, endpoints } if zone_id == "z1" && endpoints.len() == 1)
        );
    }

    #[test]
    fn post_zone_without_endpoints_is_bad_request() {
        let o = ofmf();
        o.register_agent(Arc::new(NullAgent::new("F0", fabric_inventory("F0"))))
            .unwrap();
        let zones = ODataId::new("/redfish/v1/Fabrics/F0/Zones");
        assert!(matches!(o.post(&zones, &json!({})), Err(RedfishError::BadRequest(_))));
    }

    #[test]
    fn post_connection_routes_to_agent_with_size() {
        let o = ofmf();
        let agent = Arc::new(NullAgent::new("F0", fabric_inventory("F0")));
        o.register_agent(Arc::clone(&agent) as Arc<dyn Agent>).unwrap();
        let cons = ODataId::new("/redfish/v1/Fabrics/F0/Connections");
        let body = json!({
            "Zone": {"@odata.id": "/redfish/v1/Fabrics/F0/Zones/z1"},
            "Size": 4096,
            "Links": {
                "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/F0/Endpoints/ep0"}],
                "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/F0/Endpoints/ep1"}],
            }
        });
        let rid = o.post(&cons, &body).unwrap();
        assert!(rid.as_str().starts_with("/redfish/v1/Fabrics/F0/Connections/"));
        assert!(matches!(&agent.applied_ops()[0], AgentOp::Connect { size: 4096, .. }));
    }

    #[test]
    fn apply_to_unknown_fabric_is_not_found() {
        let o = ofmf();
        assert!(matches!(
            o.apply(
                "NOPE",
                &AgentOp::DeleteZone {
                    zone: ODataId::new("/x")
                }
            ),
            Err(RedfishError::NotFound(_))
        ));
    }

    #[test]
    fn heartbeat_failures_mark_fabric_unavailable_then_recover() {
        struct FlakyAgent {
            ok: std::sync::atomic::AtomicBool,
        }
        impl Agent for FlakyAgent {
            fn info(&self) -> AgentInfo {
                AgentInfo {
                    fabric_id: "FLK0".into(),
                    technology: "CXL".into(),
                    version: "t".into(),
                }
            }
            fn discover(&self) -> Vec<(ODataId, Value)> {
                vec![(
                    ODataId::new("/redfish/v1/Fabrics/FLK0"),
                    json!({"Id": "FLK0", "Name": "FLK0", "Status": {"State": "Enabled", "Health": "OK"}}),
                )]
            }
            fn apply(&self, _op: &AgentOp) -> RedfishResult<AgentResponse> {
                Ok(AgentResponse::default())
            }
            fn drain_events(&self) -> Vec<crate::agent::AgentEvent> {
                Vec::new()
            }
            fn sample_telemetry(&self) -> Vec<crate::agent::AgentMetric> {
                Vec::new()
            }
            fn heartbeat(&self) -> bool {
                self.ok.load(Ordering::Acquire)
            }
        }

        let o = ofmf();
        let flaky = Arc::new(FlakyAgent {
            ok: std::sync::atomic::AtomicBool::new(true),
        });
        o.register_agent(Arc::clone(&flaky) as Arc<dyn Agent>).unwrap();
        assert!(o.agent_alive("FLK0"));

        flaky.ok.store(false, Ordering::Release);
        for _ in 0..MAX_MISSED_HEARTBEATS {
            o.poll();
        }
        assert!(!o.agent_alive("FLK0"));
        let fabric = ODataId::new("/redfish/v1/Fabrics/FLK0");
        assert_eq!(
            o.registry.get(&fabric).unwrap().body["Status"]["State"],
            "UnavailableOffline"
        );
        assert_eq!(o.breaker_state("FLK0"), Some(crate::supervisor::BreakerState::Open));
        // Mutations are refused while down (breaker open, 503 + Retry-After)…
        let err = o
            .apply(
                "FLK0",
                &AgentOp::CreateZone {
                    zone_id: "z9".into(),
                    endpoints: vec![],
                },
            )
            .unwrap_err();
        assert!(matches!(err, RedfishError::CircuitOpen { .. }), "{err}");
        assert_eq!(err.http_status(), 503);
        // …but teardown ops are journaled for replay on recovery.
        let err = o
            .apply(
                "FLK0",
                &AgentOp::DeleteZone {
                    zone: ODataId::new("/x"),
                },
            )
            .unwrap_err();
        assert!(matches!(err, RedfishError::CircuitOpen { .. }));
        assert_eq!(o.journal_len("FLK0"), 1);

        flaky.ok.store(true, Ordering::Release);
        o.poll();
        assert!(o.agent_alive("FLK0"));
        assert_eq!(o.registry.get(&fabric).unwrap().body["Status"]["State"], "Enabled");
        // The journaled teardown was replayed and the breaker re-closed.
        assert_eq!(o.journal_len("FLK0"), 0);
        assert_eq!(o.breaker_state("FLK0"), Some(crate::supervisor::BreakerState::Closed));
        let log = o.breaker_log("FLK0");
        assert!(!log.is_empty() && log.last().unwrap().contains("->Closed"), "{log:?}");
    }

    #[test]
    fn generic_post_and_delete() {
        let o = ofmf();
        let sys = ODataId::new(top::SYSTEMS);
        let rid = o.post(&sys, &json!({"Id": "cn01", "Name": "cn01"})).unwrap();
        assert!(o.registry.exists(&rid));
        o.delete(&rid).unwrap();
        assert!(!o.registry.exists(&rid));
    }

    #[test]
    fn event_log_materializes_and_wraps() {
        let o = ofmf();
        let entries = ODataId::new(top::EVENT_LOG_ENTRIES);
        // Publish a burst and flush.
        for i in 0..5 {
            o.events.publish(
                EventType::Alert,
                &ODataId::new("/redfish/v1/Fabrics/X"),
                format!("alert {i}"),
                "Warning",
            );
        }
        let n = o.flush_event_log();
        assert_eq!(n, 5);
        let members = o.registry.members(&entries).unwrap();
        assert_eq!(members.len(), 5);
        let first = o.registry.get(&members[0]).unwrap().body;
        assert_eq!(first["Message"], "alert 0");
        assert_eq!(first["Severity"], "Warning");

        // Overflow the cap: oldest entries are evicted.
        for i in 0..(EVENT_LOG_CAP + 20) {
            o.events.publish(
                EventType::StatusChange,
                &ODataId::new("/redfish/v1/Fabrics/X"),
                format!("tick {i}"),
                "OK",
            );
            // Flush periodically so the journal queue never overflows.
            if i % 100 == 0 {
                o.flush_event_log();
            }
        }
        o.flush_event_log();
        let members = o.registry.members(&entries).unwrap();
        assert_eq!(members.len(), EVENT_LOG_CAP, "wraps when full");
    }

    #[test]
    fn patch_publishes_event() {
        let o = ofmf();
        let (_, rx) = o
            .events
            .subscribe(&o.registry, "channel://c", vec![EventType::ResourceUpdated], vec![])
            .unwrap();
        let sys = ODataId::new(top::SYSTEMS);
        let rid = o.post(&sys, &json!({"Id": "cn01", "Name": "cn01"})).unwrap();
        o.patch(&rid, &json!({"Name": "renamed"}), None).unwrap();
        assert!(!rx.is_empty());
        let (body, _) = o.get(&rid).unwrap();
        assert_eq!(body["Name"], "renamed");
    }
}
