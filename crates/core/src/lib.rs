//! # ofmf-core
//!
//! The OpenFabrics Management Framework services layer — the paper's
//! "centralized abstract management layer that exposes a RESTful API and
//! incorporates DMTF Redfish and SNIA Swordfish schemas".
//!
//! The OFMF sits between north-bound clients (workload managers, runtime
//! libraries, administrators, the Composability Layer) and south-bound
//! technology-specific **Agents**:
//!
//! ```text
//!  clients ──► Composability Layer ──► OFMF services ──► Agents ──► fabrics
//! ```
//!
//! * [`agent`] — the [`agent::Agent`] trait Agents implement, the operation
//!   vocabulary ([`agent::AgentOp`]) the OFMF forwards to them, and the
//!   event/telemetry types they push back.
//! * [`clock`] — the service's monotonic millisecond clock (manual in tests,
//!   wall-driven in servers).
//! * [`tree`] — bootstrap of the unified Redfish tree and agent subtree
//!   mounting.
//! * [`events`] — the subscription-based event service with bounded
//!   per-subscriber delivery queues.
//! * [`telemetry`] — metric ingestion, windowed aggregation, report
//!   generation and threshold alerting.
//! * [`tasks`] — long-running operations exposed as Redfish `Task`s.
//! * [`sessions`] — token-authenticated sessions.
//! * [`supervisor`] — per-agent circuit breakers, deadline/retry dispatch
//!   and the teardown replay journal that keep one flaky Agent from taking
//!   the manager down.
//! * [`ofmf`] — the [`ofmf::Ofmf`] facade tying everything together; this is
//!   the object the REST layer and the Composability Manager program
//!   against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod clock;
pub mod events;
pub mod ofmf;
pub mod sessions;
pub mod supervisor;
pub mod tasks;
pub mod telemetry;
pub mod tree;

pub use agent::{Agent, AgentEvent, AgentInfo, AgentOp, AgentResponse};
pub use clock::Clock;
pub use events::EventService;
pub use ofmf::Ofmf;
pub use supervisor::{AgentSupervisor, BreakerState, SupervisorConfig};
pub use tasks::TaskService;
pub use telemetry::TelemetryService;
