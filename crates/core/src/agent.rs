//! The Agent contract: how the OFMF talks to technology-specific fabric
//! managers.
//!
//! "Client requests … are forwarded to the appropriate fabric manager via
//! dedicated light-weight technology-specific Agents. The Agents …
//! translate between the OFMF and network fabric-specific providers."
//!
//! An [`Agent`] owns one fabric. On registration the OFMF calls
//! [`Agent::discover`] and mounts the returned subtree under
//! `/redfish/v1/Fabrics/{fabric_id}` (plus device resources under Chassis /
//! StorageServices). Thereafter the OFMF forwards intent as [`AgentOp`]s and
//! polls [`Agent::drain_events`] / [`Agent::sample_telemetry`].

use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use redfish_model::{RedfishError, RedfishResult};
use serde_json::Value;

/// Identity and capabilities reported at registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentInfo {
    /// Fabric id this agent manages (becomes the Redfish fabric member id).
    pub fabric_id: String,
    /// Technology string (`CXL`, `NVMeOverFabrics`, `InfiniBand`, …).
    pub technology: String,
    /// Human readable agent name/version.
    pub version: String,
}

/// The operation vocabulary the OFMF forwards to agents.
///
/// Operands are Redfish ids *relative to the unified tree*; each agent
/// translates them to its own fabric-manager handles.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentOp {
    /// Create a zone over the given endpoint resources.
    CreateZone {
        /// Requested zone member id (collection-unique).
        zone_id: String,
        /// Endpoint resource ids (under this agent's fabric).
        endpoints: Vec<ODataId>,
    },
    /// Delete a zone.
    DeleteZone {
        /// Zone resource id.
        zone: ODataId,
    },
    /// Establish a connection binding `initiator` to a carve of `target`.
    Connect {
        /// Requested connection member id.
        connection_id: String,
        /// Zone authorizing the connection.
        zone: ODataId,
        /// Initiator endpoint resource id.
        initiator: ODataId,
        /// Target endpoint resource id.
        target: ODataId,
        /// Capacity to carve on the target device (MiB for memory, bytes
        /// for storage, 1 for whole-device grants).
        size: u64,
        /// Bandwidth to reserve along the path (Gbit/s; 0 = best effort).
        qos_gbps: f64,
    },
    /// Tear down a connection.
    Disconnect {
        /// Connection resource id.
        connection: ODataId,
    },
    /// Inject a fault (test/ops tooling; production agents reject this).
    InjectFault {
        /// Agent-specific fault descriptor.
        description: String,
    },
    /// Query the current route between two endpoints without changing
    /// anything. The response payload carries `{"Hops": n, "LatencyNs": l,
    /// "BandwidthGbps": b}`; used by topology-aware placement.
    ProbeRoute {
        /// Initiator endpoint resource id.
        initiator: ODataId,
        /// Target endpoint resource id.
        target: ODataId,
    },
    /// Query many candidate routes in one supervised round-trip. The
    /// response payload carries `{"TopologyGeneration": g, "Results": [...]}`
    /// with one entry per pair, in order: either `{"Hops", "LatencyNs",
    /// "BandwidthGbps", "ResidualGbps", "BlastRadius"}` or `{"Error": msg}`
    /// for unroutable pairs (a per-pair failure never fails the batch).
    /// Used by congestion-aware placement to amortize supervisor overhead
    /// across candidates.
    ProbeRoutes {
        /// `(initiator, target)` endpoint resource id pairs to probe.
        pairs: Vec<(ODataId, ODataId)>,
    },
}

impl AgentOp {
    /// Short static name of the operation, for span annotations and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            AgentOp::CreateZone { .. } => "CreateZone",
            AgentOp::DeleteZone { .. } => "DeleteZone",
            AgentOp::Connect { .. } => "Connect",
            AgentOp::Disconnect { .. } => "Disconnect",
            AgentOp::InjectFault { .. } => "InjectFault",
            AgentOp::ProbeRoute { .. } => "ProbeRoute",
            AgentOp::ProbeRoutes { .. } => "ProbeRoutes",
        }
    }
}

/// Encode an [`AgentOp`] as a JSON value for the durability journal
/// (`WalRecord::Teardown` payloads). Inverse of [`op_from_value`].
pub fn op_to_value(op: &AgentOp) -> Value {
    match op {
        AgentOp::CreateZone { zone_id, endpoints } => serde_json::json!({
            "Kind": "CreateZone",
            "ZoneId": zone_id.as_str(),
            "Endpoints": endpoints.iter().map(|e| serde_json::json!(e.as_str())).collect::<Vec<_>>(),
        }),
        AgentOp::DeleteZone { zone } => serde_json::json!({
            "Kind": "DeleteZone",
            "Zone": zone.as_str(),
        }),
        AgentOp::Connect {
            connection_id,
            zone,
            initiator,
            target,
            size,
            qos_gbps,
        } => serde_json::json!({
            "Kind": "Connect",
            "ConnectionId": connection_id.as_str(),
            "Zone": zone.as_str(),
            "Initiator": initiator.as_str(),
            "Target": target.as_str(),
            "Size": *size,
            "QosGbps": *qos_gbps,
        }),
        AgentOp::Disconnect { connection } => serde_json::json!({
            "Kind": "Disconnect",
            "Connection": connection.as_str(),
        }),
        AgentOp::InjectFault { description } => serde_json::json!({
            "Kind": "InjectFault",
            "Description": description.as_str(),
        }),
        AgentOp::ProbeRoute { initiator, target } => serde_json::json!({
            "Kind": "ProbeRoute",
            "Initiator": initiator.as_str(),
            "Target": target.as_str(),
        }),
        AgentOp::ProbeRoutes { pairs } => serde_json::json!({
            "Kind": "ProbeRoutes",
            "Pairs": pairs
                .iter()
                .map(|(i, t)| serde_json::json!({"Initiator": i.as_str(), "Target": t.as_str()}))
                .collect::<Vec<_>>(),
        }),
    }
}

/// Decode an [`AgentOp`] journaled by [`op_to_value`]. `None` on malformed
/// or unknown payloads (replay skips the record instead of refusing boot).
pub fn op_from_value(v: &Value) -> Option<AgentOp> {
    let s = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
    let id = |k: &str| s(k).map(ODataId::new);
    Some(match v.get("Kind")?.as_str()? {
        "CreateZone" => AgentOp::CreateZone {
            zone_id: s("ZoneId")?,
            endpoints: v
                .get("Endpoints")?
                .as_array()?
                .iter()
                .filter_map(Value::as_str)
                .map(ODataId::new)
                .collect(),
        },
        "DeleteZone" => AgentOp::DeleteZone { zone: id("Zone")? },
        "Connect" => AgentOp::Connect {
            connection_id: s("ConnectionId")?,
            zone: id("Zone")?,
            initiator: id("Initiator")?,
            target: id("Target")?,
            size: v.get("Size")?.as_u64()?,
            qos_gbps: v.get("QosGbps")?.as_f64()?,
        },
        "Disconnect" => AgentOp::Disconnect {
            connection: id("Connection")?,
        },
        "InjectFault" => AgentOp::InjectFault {
            description: s("Description")?,
        },
        "ProbeRoute" => AgentOp::ProbeRoute {
            initiator: id("Initiator")?,
            target: id("Target")?,
        },
        "ProbeRoutes" => AgentOp::ProbeRoutes {
            pairs: v
                .get("Pairs")?
                .as_array()?
                .iter()
                .filter_map(|p| {
                    let i = p.get("Initiator")?.as_str()?;
                    let t = p.get("Target")?.as_str()?;
                    Some((ODataId::new(i), ODataId::new(t)))
                })
                .collect(),
        },
        _ => return None,
    })
}

/// What an agent returns from a successful operation.
#[derive(Debug, Clone, Default)]
pub struct AgentResponse {
    /// Resources to create/replace in the unified tree: `(id, body)`.
    pub upserts: Vec<(ODataId, Value)>,
    /// Resources to remove from the unified tree.
    pub removals: Vec<ODataId>,
    /// The primary resource the operation produced (e.g. the new
    /// Connection), if any.
    pub primary: Option<ODataId>,
    /// Operation-specific result data (e.g. route metrics for
    /// [`AgentOp::ProbeRoute`]).
    pub payload: Option<Value>,
}

/// An event pushed north by an agent.
#[derive(Debug, Clone)]
pub struct AgentEvent {
    /// Redfish event category.
    pub event_type: EventType,
    /// The resource (unified-tree id) the event concerns.
    pub origin: ODataId,
    /// Human readable message.
    pub message: String,
    /// `OK` / `Warning` / `Critical`.
    pub severity: String,
    /// Merge-patches to apply to existing resources alongside the event
    /// (e.g. Status updates). Applied with RFC 7386 semantics so the rest of
    /// the document survives.
    pub patches: Vec<(ODataId, Value)>,
    /// Resources removed as a consequence (e.g. a lost Connection).
    pub removals: Vec<ODataId>,
}

/// One telemetry point pushed north by an agent.
///
/// The metric name is an interned `Arc<str>`: agents intern each distinct
/// name once and every sample shares it, so the telemetry hot path never
/// clones a `String` per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentMetric {
    /// Metric name, e.g. `PortRxBandwidthGbps`.
    pub metric_id: std::sync::Arc<str>,
    /// The resource the sample describes (unified-tree id).
    pub origin: ODataId,
    /// Sampled value.
    pub value: f64,
}

/// A technology-specific fabric agent.
///
/// Implementations must be `Send + Sync`: the OFMF calls agents from REST
/// worker threads and from its poll loop concurrently. Implementations
/// should keep their critical sections short — the OFMF never holds its
/// tree lock across an agent call.
pub trait Agent: Send + Sync {
    /// Identity and capabilities.
    fn info(&self) -> AgentInfo;

    /// Full inventory of the agent's fabric as Redfish documents, with ids
    /// already placed in the unified tree (under `/redfish/v1/Fabrics/{id}`
    /// and related top-level collections).
    fn discover(&self) -> Vec<(ODataId, Value)>;

    /// Apply one operation.
    fn apply(&self, op: &AgentOp) -> RedfishResult<AgentResponse>;

    /// Drain events that occurred since the last drain.
    fn drain_events(&self) -> Vec<AgentEvent>;

    /// Sample current telemetry.
    fn sample_telemetry(&self) -> Vec<AgentMetric>;

    /// Liveness probe. A `false` (or panicking) agent is marked unavailable
    /// and its fabric's resources transition to `StandbyOffline`.
    fn heartbeat(&self) -> bool {
        true
    }
}

/// A trivial in-memory agent for tests: serves a fixed inventory, accepts
/// every op with an empty response, records applied ops.
#[derive(Debug, Default)]
pub struct NullAgent {
    /// Fabric id reported by `info`.
    pub fabric_id: String,
    /// Inventory returned by `discover`.
    pub inventory: Vec<(ODataId, Value)>,
    ops: parking_lot::Mutex<Vec<AgentOp>>,
}

impl NullAgent {
    /// Build a null agent with the given id and inventory.
    pub fn new(fabric_id: &str, inventory: Vec<(ODataId, Value)>) -> Self {
        NullAgent {
            fabric_id: fabric_id.to_string(),
            inventory,
            ops: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Ops applied so far (test observation).
    pub fn applied_ops(&self) -> Vec<AgentOp> {
        self.ops.lock().clone()
    }
}

impl Agent for NullAgent {
    fn info(&self) -> AgentInfo {
        AgentInfo {
            fabric_id: self.fabric_id.clone(),
            technology: "Ethernet".to_string(),
            version: "null-agent/0.1".to_string(),
        }
    }

    fn discover(&self) -> Vec<(ODataId, Value)> {
        self.inventory.clone()
    }

    fn apply(&self, op: &AgentOp) -> RedfishResult<AgentResponse> {
        if let AgentOp::InjectFault { description } = op {
            return Err(RedfishError::BadRequest(format!(
                "null agent cannot inject faults: {description}"
            )));
        }
        self.ops.lock().push(op.clone());
        Ok(AgentResponse::default())
    }

    fn drain_events(&self) -> Vec<AgentEvent> {
        Vec::new()
    }

    fn sample_telemetry(&self) -> Vec<AgentMetric> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_agent_records_ops() {
        let a = NullAgent::new("NULL0", vec![]);
        let op = AgentOp::DeleteZone {
            zone: ODataId::new("/redfish/v1/Fabrics/NULL0/Zones/z"),
        };
        a.apply(&op).unwrap();
        assert_eq!(a.applied_ops(), vec![op]);
        assert!(a.heartbeat());
    }

    #[test]
    fn op_codec_roundtrips_every_variant() {
        let ops = vec![
            AgentOp::CreateZone {
                zone_id: "z9".into(),
                endpoints: vec![
                    ODataId::new("/redfish/v1/Fabrics/F/Endpoints/a"),
                    ODataId::new("/redfish/v1/Fabrics/F/Endpoints/b"),
                ],
            },
            AgentOp::DeleteZone {
                zone: ODataId::new("/redfish/v1/Fabrics/F/Zones/z9"),
            },
            AgentOp::Connect {
                connection_id: "c3".into(),
                zone: ODataId::new("/redfish/v1/Fabrics/F/Zones/z9"),
                initiator: ODataId::new("/redfish/v1/Fabrics/F/Endpoints/a"),
                target: ODataId::new("/redfish/v1/Fabrics/F/Endpoints/b"),
                size: 4096,
                qos_gbps: 12.5,
            },
            AgentOp::Disconnect {
                connection: ODataId::new("/redfish/v1/Fabrics/F/Connections/c3"),
            },
            AgentOp::InjectFault {
                description: "link0 down".into(),
            },
            AgentOp::ProbeRoute {
                initiator: ODataId::new("/redfish/v1/Fabrics/F/Endpoints/a"),
                target: ODataId::new("/redfish/v1/Fabrics/F/Endpoints/b"),
            },
            AgentOp::ProbeRoutes {
                pairs: vec![
                    (
                        ODataId::new("/redfish/v1/Fabrics/F/Endpoints/a"),
                        ODataId::new("/redfish/v1/Fabrics/F/Endpoints/b"),
                    ),
                    (
                        ODataId::new("/redfish/v1/Fabrics/F/Endpoints/a"),
                        ODataId::new("/redfish/v1/Fabrics/F/Endpoints/c"),
                    ),
                ],
            },
            AgentOp::ProbeRoutes { pairs: vec![] },
        ];
        for op in ops {
            let v = op_to_value(&op);
            assert_eq!(op_from_value(&v), Some(op));
        }
        assert_eq!(op_from_value(&serde_json::json!({"Kind": "Nonsense"})), None);
        assert_eq!(op_from_value(&serde_json::json!({"no": "kind"})), None);
    }

    #[test]
    fn null_agent_rejects_fault_injection() {
        let a = NullAgent::new("NULL0", vec![]);
        assert!(a
            .apply(&AgentOp::InjectFault {
                description: "link0 down".into()
            })
            .is_err());
    }
}
