//! Bootstrap of the unified Redfish tree and agent subtree mounting.
//!
//! "An HPC disaggregated infrastructure is represented under a single
//! Redfish tree that includes all the fabrics and resources available."
//! This module creates the service root and all top-level collections, and
//! mounts/unmounts the subtrees agents publish at registration.

use redfish_model::odata::ODataId;
use redfish_model::path::{top, SERVICE_ROOT};
use redfish_model::resources::{Resource, ServiceRoot};
use redfish_model::{RedfishResult, Registry};
use serde_json::{json, Value};

/// Create the service root, all top-level collections and the service
/// singletons in `reg`.
pub fn bootstrap(reg: &Registry, uuid: &str) -> RedfishResult<()> {
    let root = ServiceRoot::ofmf(uuid);
    reg.create(&ODataId::new(SERVICE_ROOT), root.to_value())?;

    let collections: [(&str, &str, &str); 6] = [
        (
            top::SYSTEMS,
            "#ComputerSystemCollection.ComputerSystemCollection",
            "Computer Systems",
        ),
        (top::CHASSIS, "#ChassisCollection.ChassisCollection", "Chassis"),
        (top::FABRICS, "#FabricCollection.FabricCollection", "Fabrics"),
        (
            top::STORAGE_SERVICES,
            "#StorageServiceCollection.StorageServiceCollection",
            "Storage Services",
        ),
        (
            top::RESOURCE_BLOCKS,
            "#ResourceBlockCollection.ResourceBlockCollection",
            "Resource Blocks",
        ),
        (top::TASKS, "#TaskCollection.TaskCollection", "Tasks"),
    ];

    // Service singletons must exist before their child collections.
    reg.create(
        &ODataId::new(top::EVENT_SERVICE),
        json!({
            "@odata.type": "#EventService.v1_10_0.EventService",
            "Id": "EventService",
            "Name": "Event Service",
            "ServiceEnabled": true,
            "Subscriptions": {"@odata.id": top::SUBSCRIPTIONS},
        }),
    )?;
    reg.create_collection(
        &ODataId::new(top::SUBSCRIPTIONS),
        "#EventDestinationCollection.EventDestinationCollection",
        "Event Subscriptions",
    )?;
    reg.create(
        &ODataId::new(top::TASK_SERVICE),
        json!({
            "@odata.type": "#TaskService.v1_2_0.TaskService",
            "Id": "TaskService",
            "Name": "Task Service",
            "ServiceEnabled": true,
            "Tasks": {"@odata.id": top::TASKS},
        }),
    )?;
    reg.create(
        &ODataId::new(top::SESSION_SERVICE),
        json!({
            "@odata.type": "#SessionService.v1_1_8.SessionService",
            "Id": "SessionService",
            "Name": "Session Service",
            "ServiceEnabled": true,
            "SessionTimeout": 1800,
            "Sessions": {"@odata.id": top::SESSIONS},
        }),
    )?;
    reg.create_collection(
        &ODataId::new(top::SESSIONS),
        "#SessionCollection.SessionCollection",
        "Sessions",
    )?;
    reg.create(
        &ODataId::new(top::TELEMETRY_SERVICE),
        json!({
            "@odata.type": "#TelemetryService.v1_3_0.TelemetryService",
            "Id": "TelemetryService",
            "Name": "Telemetry Service",
            "ServiceEnabled": true,
            "MetricReports": {"@odata.id": top::METRIC_REPORTS},
        }),
    )?;
    reg.create_collection(
        &ODataId::new(top::METRIC_REPORTS),
        "#MetricReportCollection.MetricReportCollection",
        "Metric Reports",
    )?;
    reg.create(
        &ODataId::new(top::COMPOSITION_SERVICE),
        json!({
            "@odata.type": "#CompositionService.v1_2_0.CompositionService",
            "Id": "CompositionService",
            "Name": "Composition Service",
            "ServiceEnabled": true,
            "AllowOverprovisioning": false,
            "ResourceBlocks": {"@odata.id": top::RESOURCE_BLOCKS},
        }),
    )?;
    for (id, ty, name) in collections {
        reg.create_collection(&ODataId::new(id), ty, name)?;
    }

    // The OFMF is itself a Redfish manager with an event log.
    reg.create_collection(
        &ODataId::new(top::MANAGERS),
        "#ManagerCollection.ManagerCollection",
        "Managers",
    )?;
    reg.create(
        &ODataId::new(top::OFMF_MANAGER),
        json!({
            "@odata.type": "#Manager.v1_19_0.Manager",
            "Id": "OFMF",
            "Name": "OpenFabrics Management Framework",
            "ManagerType": "Service",
            "Status": {"State": "Enabled", "Health": "OK"},
            "LogServices": {"@odata.id": format!("{}/LogServices", top::OFMF_MANAGER)},
            "Oem": {"OFMF": {"MetricReports": {"@odata.id": top::OBS_METRIC_REPORTS}}},
        }),
    )?;
    reg.create_collection(
        &ODataId::new(top::OBS_METRIC_REPORTS),
        "#MetricReportCollection.MetricReportCollection",
        "Live Metric Reports",
    )?;
    let log_services = ODataId::new(top::OFMF_MANAGER).child("LogServices");
    reg.create_collection(
        &log_services,
        "#LogServiceCollection.LogServiceCollection",
        "Log Services",
    )?;
    reg.create(
        &log_services.child("EventLog"),
        json!({
            "@odata.type": "#LogService.v1_5_0.LogService",
            "Id": "EventLog",
            "Name": "OFMF Event Log",
            "OverWritePolicy": "WrapsWhenFull",
            "ServiceEnabled": true,
            "Entries": {"@odata.id": top::EVENT_LOG_ENTRIES},
        }),
    )?;
    reg.create_collection(
        &ODataId::new(top::EVENT_LOG_ENTRIES),
        "#LogEntryCollection.LogEntryCollection",
        "Event Log Entries",
    )?;
    // Observability: in-process metrics and the event ring, served live by
    // the REST layer; only the shells live in the tree.
    reg.create(
        &log_services.child("Observability"),
        json!({
            "@odata.type": "#LogService.v1_5_0.LogService",
            "Id": "Observability",
            "Name": "OFMF Observability Events",
            "OverWritePolicy": "WrapsWhenFull",
            "ServiceEnabled": true,
            "Entries": {"@odata.id": top::OBS_LOG_ENTRIES},
        }),
    )?;
    reg.create_collection(
        &ODataId::new(top::OBS_LOG_ENTRIES),
        "#LogEntryCollection.LogEntryCollection",
        "Observability Events",
    )?;
    Ok(())
}

/// Mount an agent's discovered inventory into the unified tree.
///
/// Resources are created in path order so parents (collections) exist before
/// children; documents already present are replaced (re-registration after
/// an agent restart).
pub fn mount_subtree(reg: &Registry, inventory: &[(ODataId, Value)]) -> RedfishResult<usize> {
    let mut sorted: Vec<&(ODataId, Value)> = inventory.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut mounted = 0;
    for (id, body) in sorted {
        let is_collection = body.get("Members").is_some();
        if reg.exists(id) {
            let mut body = body.clone();
            if is_collection {
                // Re-registration over a recovered tree: the fresh discovery
                // does not know about dynamically created members (zones,
                // connections, carves) replayed from the journal. Union the
                // member lists so replayed children stay reachable.
                if let Ok(existing) = reg.get(id) {
                    let mut members: Vec<Value> = body["Members"].as_array().cloned().unwrap_or_default();
                    for m in existing.body["Members"].as_array().into_iter().flatten() {
                        let known = m["@odata.id"]
                            .as_str()
                            .is_some_and(|p| members.iter().any(|n| n["@odata.id"].as_str() == Some(p)));
                        if !known {
                            members.push(m.clone());
                        }
                    }
                    if let Some(obj) = body.as_object_mut() {
                        obj.insert("Members@odata.count".into(), serde_json::json!(members.len() as u64));
                        obj.insert("Members".into(), Value::Array(members));
                    }
                }
            }
            reg.replace(id, body)?;
        } else if is_collection {
            // Collections arrive with their Members pre-listed; create the
            // shell then replace to preserve the agent's member list.
            let ty = body.get("@odata.type").and_then(Value::as_str).unwrap_or("#Collection");
            let name = body.get("Name").and_then(Value::as_str).unwrap_or(id.leaf());
            reg.create_collection(id, ty, name)?;
            reg.replace(id, body.clone())?;
        } else {
            reg.create(id, body.clone())?;
        }
        mounted += 1;
    }
    Ok(mounted)
}

/// Remove an agent's fabric subtree (agent unregistration / death).
pub fn unmount_fabric(reg: &Registry, fabric_id: &str) -> usize {
    let fabric = ODataId::new(format!("{}/{}", top::FABRICS, fabric_id));
    reg.delete_subtree(&fabric)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_creates_canonical_tree() {
        let reg = Registry::new();
        bootstrap(&reg, "uuid-1").unwrap();
        for p in [
            SERVICE_ROOT,
            top::SYSTEMS,
            top::CHASSIS,
            top::FABRICS,
            top::STORAGE_SERVICES,
            top::EVENT_SERVICE,
            top::SUBSCRIPTIONS,
            top::TASK_SERVICE,
            top::TASKS,
            top::SESSION_SERVICE,
            top::SESSIONS,
            top::TELEMETRY_SERVICE,
            top::METRIC_REPORTS,
            top::COMPOSITION_SERVICE,
            top::RESOURCE_BLOCKS,
            top::MANAGERS,
            top::OFMF_MANAGER,
            top::EVENT_LOG_ENTRIES,
            top::OBS_METRIC_REPORTS,
            top::OBS_LOG_ENTRIES,
        ] {
            assert!(reg.exists(&ODataId::new(p)), "{p} missing");
        }
        assert!(reg.dangling_links().is_empty(), "bootstrap tree must be closed");
    }

    #[test]
    fn bootstrap_twice_fails_cleanly() {
        let reg = Registry::new();
        bootstrap(&reg, "uuid-1").unwrap();
        assert!(bootstrap(&reg, "uuid-1").is_err());
    }

    #[test]
    fn mount_orders_parents_first() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let fabric = ODataId::new("/redfish/v1/Fabrics/CXL0");
        // Deliberately shuffled: child before parent.
        let inv = vec![
            (fabric.child("Endpoints").child("ep0"), json!({"Name": "ep0"})),
            (
                fabric.clone(),
                json!({"@odata.type": "#Fabric.v1_3_0.Fabric", "Name": "CXL0"}),
            ),
            (
                fabric.child("Endpoints"),
                json!({"@odata.type": "#EndpointCollection.EndpointCollection", "Name": "Endpoints", "Members": [], "Members@odata.count": 0}),
            ),
        ];
        let n = mount_subtree(&reg, &inv).unwrap();
        assert_eq!(n, 3);
        // Endpoint got linked into its collection by the registry.
        let members = reg.members(&fabric.child("Endpoints")).unwrap();
        assert_eq!(members.len(), 1);
        // Fabric is a member of the Fabrics collection.
        let fabrics = reg.members(&ODataId::new(top::FABRICS)).unwrap();
        assert_eq!(fabrics, vec![fabric.clone()]);
    }

    #[test]
    fn unmount_removes_everything() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let fabric = ODataId::new("/redfish/v1/Fabrics/IB0");
        mount_subtree(&reg, &[(fabric.clone(), json!({"Name": "IB0"}))]).unwrap();
        assert_eq!(unmount_fabric(&reg, "IB0"), 1);
        assert!(!reg.exists(&fabric));
        assert!(reg.members(&ODataId::new(top::FABRICS)).unwrap().is_empty());
    }

    #[test]
    fn remount_replaces_documents() {
        let reg = Registry::new();
        bootstrap(&reg, "u").unwrap();
        let fabric = ODataId::new("/redfish/v1/Fabrics/CXL0");
        mount_subtree(&reg, &[(fabric.clone(), json!({"Name": "old"}))]).unwrap();
        mount_subtree(&reg, &[(fabric.clone(), json!({"Name": "new"}))]).unwrap();
        assert_eq!(reg.get(&fabric).unwrap().body["Name"], "new");
        // Not double-linked into the collection.
        assert_eq!(reg.members(&ODataId::new(top::FABRICS)).unwrap().len(), 1);
    }
}
