//! Per-agent supervision: the resilience layer between [`crate::Ofmf`] and
//! flaky south-bound Agents.
//!
//! Every [`AgentOp`] dispatched through the OFMF passes through an
//! [`AgentSupervisor`] that provides:
//!
//! * **deadline + bounded retry** — transient failures (panics, dropped
//!   ops) are retried with exponential backoff and seeded jitter against a
//!   per-dispatch deadline measured on the service [`Clock`], so simulated
//!   runs are instantaneous and reproducible;
//! * **a circuit breaker** — a per-agent Closed → Open → HalfOpen state
//!   machine fed by op failures and the missed-heartbeat path. While Open,
//!   ops are rejected immediately with [`RedfishError::CircuitOpen`]
//!   (surfaced north as `503` + `Retry-After`) instead of hammering a dead
//!   agent;
//! * **a replay journal** — teardown ops (`DeleteZone` / `Disconnect`) that
//!   could not reach the agent are journaled and replayed when the agent
//!   heartbeats back, so compensation work is never silently lost;
//! * **degraded-state bookkeeping** — the prior `Status` of every resource
//!   the OFMF marks `Critical` while the agent is down, so recovery restores
//!   exactly the pre-outage state.
//!
//! The breaker ([`CircuitBreaker`]) is a pure state machine with no clock or
//! I/O of its own, so it can be property-tested exhaustively.

use crate::agent::{Agent, AgentOp, AgentResponse};
use crate::clock::Clock;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use redfish_model::odata::ODataId;
use redfish_model::{RedfishError, RedfishResult};
use serde_json::Value;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

// ------------------------------------------------------------------ breaker

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Ops flow through; consecutive failures are counted.
    Closed,
    /// Ops are rejected until the cooldown elapses.
    Open,
    /// Probing: ops are admitted; one success re-closes, one failure
    /// re-opens.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding: 0 = Closed, 1 = HalfOpen, 2 = Open.
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "Closed"),
            BreakerState::Open => write!(f, "Open"),
            BreakerState::HalfOpen => write!(f, "HalfOpen"),
        }
    }
}

/// Signals fed into the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerInput {
    /// An op reached the agent and the agent answered (any business result).
    OpSuccess,
    /// An op failed in a retryable way (panic, drop, transport loss).
    OpFailure,
    /// The agent answered a heartbeat.
    HeartbeatOk,
    /// The agent missed a heartbeat.
    HeartbeatMissed,
    /// The liveness machinery declared the agent dead (missed-heartbeat
    /// threshold crossed): open unconditionally.
    ForceOpen,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive retryable failures (ops or heartbeats) that open the
    /// breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays Open before admitting a probe.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 500,
        }
    }
}

/// One recorded state change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerTransition {
    /// Service-clock time of the transition.
    pub at_ms: u64,
    /// State left.
    pub from: BreakerState,
    /// State entered.
    pub to: BreakerState,
    /// Why (`"op-failures"`, `"probe-success"`, …).
    pub cause: &'static str,
}

impl std::fmt::Display for BreakerTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t={} {}->{} ({})", self.at_ms, self.from, self.to, self.cause)
    }
}

/// Admission decision for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allowed,
    /// Breaker half-open: proceed, the result decides the next state.
    Probe,
    /// Breaker open: reject without touching the agent.
    Rejected {
        /// Milliseconds until a probe will be admitted.
        retry_after_ms: u64,
    },
}

/// The per-agent circuit breaker. Pure: all time is passed in, no I/O.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ms: u64,
    log: Vec<BreakerTransition>,
    pending: Vec<BreakerTransition>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_ms: 0,
            log: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Full transition history (never drained; deterministic runs produce
    /// identical logs).
    pub fn log(&self) -> &[BreakerTransition] {
        &self.log
    }

    /// Drain transitions not yet published as events.
    pub fn take_pending(&mut self) -> Vec<BreakerTransition> {
        std::mem::take(&mut self.pending)
    }

    fn transition(&mut self, to: BreakerState, now_ms: u64, cause: &'static str) -> BreakerTransition {
        let rec = BreakerTransition {
            at_ms: now_ms,
            from: self.state,
            to,
            cause,
        };
        self.state = to;
        if to == BreakerState::Open {
            self.opened_at_ms = now_ms;
        }
        if to == BreakerState::Closed {
            self.consecutive_failures = 0;
        }
        self.log.push(rec.clone());
        self.pending.push(rec.clone());
        rec
    }

    /// Milliseconds until the breaker would admit a probe (0 when not Open).
    pub fn retry_after_ms(&self, now_ms: u64) -> u64 {
        match self.state {
            BreakerState::Open => self
                .cfg
                .cooldown_ms
                .saturating_sub(now_ms.saturating_sub(self.opened_at_ms))
                .max(1),
            _ => 0,
        }
    }

    /// Decide whether a dispatch may proceed. Open breakers transition to
    /// HalfOpen once the cooldown has elapsed.
    pub fn admit(&mut self, now_ms: u64) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::HalfOpen => Admission::Probe,
            BreakerState::Open => {
                if now_ms.saturating_sub(self.opened_at_ms) >= self.cfg.cooldown_ms {
                    let _ = self.transition(BreakerState::HalfOpen, now_ms, "cooldown-elapsed");
                    Admission::Probe
                } else {
                    Admission::Rejected {
                        retry_after_ms: self.retry_after_ms(now_ms),
                    }
                }
            }
        }
    }

    /// Feed one signal into the state machine. Returns the transition it
    /// caused, if any, so callers can annotate the active dispatch span.
    pub fn record(&mut self, input: BreakerInput, now_ms: u64) -> Option<BreakerTransition> {
        match (self.state, input) {
            (BreakerState::Closed, BreakerInput::OpSuccess | BreakerInput::HeartbeatOk) => {
                self.consecutive_failures = 0;
                None
            }
            (BreakerState::Closed, BreakerInput::OpFailure | BreakerInput::HeartbeatMissed) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    Some(self.transition(BreakerState::Open, now_ms, "failure-threshold"))
                } else {
                    None
                }
            }
            (_, BreakerInput::ForceOpen) => {
                if self.state != BreakerState::Open {
                    Some(self.transition(BreakerState::Open, now_ms, "heartbeats-lost"))
                } else {
                    None
                }
            }
            (BreakerState::HalfOpen, BreakerInput::OpSuccess) => {
                Some(self.transition(BreakerState::Closed, now_ms, "probe-success"))
            }
            (BreakerState::HalfOpen, BreakerInput::OpFailure) => {
                Some(self.transition(BreakerState::Open, now_ms, "probe-failure"))
            }
            (BreakerState::HalfOpen, BreakerInput::HeartbeatMissed) => {
                Some(self.transition(BreakerState::Open, now_ms, "heartbeat-missed"))
            }
            (BreakerState::HalfOpen, BreakerInput::HeartbeatOk) => None,
            (BreakerState::Open, BreakerInput::HeartbeatOk) => {
                Some(self.transition(BreakerState::HalfOpen, now_ms, "heartbeat-recovered"))
            }
            // Results of ops already in flight when the breaker opened; the
            // heartbeat/probe paths own recovery, so these are inert.
            (BreakerState::Open, BreakerInput::OpSuccess | BreakerInput::OpFailure | BreakerInput::HeartbeatMissed) => {
                None
            }
        }
    }
}

// -------------------------------------------------------------- retry policy

/// Retry/deadline tuning for one dispatch.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total service-clock budget for one dispatch (all attempts +
    /// backoffs).
    pub deadline_ms: u64,
    /// Maximum attempts (1 = no retry).
    pub max_attempts: u32,
    /// First backoff; doubles each retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
    /// Uniform jitter added to each backoff, drawn from the seeded rng.
    pub jitter_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline_ms: 1_000,
            max_attempts: 4,
            backoff_base_ms: 10,
            backoff_max_ms: 250,
            jitter_ms: 10,
        }
    }
}

/// Full supervisor tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupervisorConfig {
    /// Retry/deadline policy.
    pub retry: RetryPolicy,
    /// Breaker policy.
    pub breaker: BreakerConfig,
}

// ------------------------------------------------------------------ metrics

struct SupervisorMetrics {
    /// `ofmf.supervisor.retries.total`
    retries: Arc<ofmf_obs::Counter>,
    /// `ofmf.supervisor.exhausted.total` — dispatches that gave up.
    exhausted: Arc<ofmf_obs::Counter>,
    /// `ofmf.supervisor.deadline_exceeded.total`
    deadline_exceeded: Arc<ofmf_obs::Counter>,
    /// `ofmf.supervisor.breaker.rejected.total` — ops refused while Open.
    rejected: Arc<ofmf_obs::Counter>,
    /// `ofmf.supervisor.journal.replayed.total`
    replayed: Arc<ofmf_obs::Counter>,
    /// `ofmf.supervisor.journal.depth` — teardown ops awaiting replay.
    journal_depth: Arc<ofmf_obs::Gauge>,
}

fn metrics() -> &'static SupervisorMetrics {
    static METRICS: std::sync::OnceLock<SupervisorMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| SupervisorMetrics {
        retries: ofmf_obs::counter("ofmf.supervisor.retries.total"),
        exhausted: ofmf_obs::counter("ofmf.supervisor.exhausted.total"),
        deadline_exceeded: ofmf_obs::counter("ofmf.supervisor.deadline_exceeded.total"),
        rejected: ofmf_obs::counter("ofmf.supervisor.breaker.rejected.total"),
        replayed: ofmf_obs::counter("ofmf.supervisor.journal.replayed.total"),
        journal_depth: ofmf_obs::gauge("ofmf.supervisor.journal.depth"),
    })
}

// --------------------------------------------------------------- supervisor

/// Derive a per-agent rng seed from the service seed and the fabric id
/// (FNV-1a over the id), so jitter streams differ per agent but stay
/// reproducible.
pub fn derive_seed(seed: u64, fabric_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fabric_id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^ h
}

/// Whether an agent error is worth retrying (transport/availability, not a
/// deterministic business rejection).
pub fn retryable(e: &RedfishError) -> bool {
    matches!(e, RedfishError::AgentUnavailable(_) | RedfishError::Internal(_))
}

/// Whether an op is teardown work that must eventually reach the agent and
/// is therefore journaled when the agent is unreachable.
pub fn is_teardown(op: &AgentOp) -> bool {
    matches!(op, AgentOp::DeleteZone { .. } | AgentOp::Disconnect { .. })
}

/// The per-agent supervisor: breaker + retry dispatch + replay journal +
/// degraded-state bookkeeping.
pub struct AgentSupervisor {
    fabric_id: String,
    clock: Arc<Clock>,
    cfg: SupervisorConfig,
    breaker: Mutex<CircuitBreaker>,
    rng: Mutex<StdRng>,
    journal: Mutex<Vec<AgentOp>>,
    /// `(id, prior Status value)` of every resource degraded while the
    /// agent is down, restored verbatim on recovery.
    degraded: Mutex<Vec<(ODataId, Value)>>,
    /// `ofmf.supervisor.breaker.state.<fabric>` — 0 Closed / 1 HalfOpen / 2 Open.
    state_gauge: Arc<ofmf_obs::Gauge>,
}

impl AgentSupervisor {
    /// New supervisor for `fabric_id`, with jitter seeded from `seed`.
    pub fn new(fabric_id: &str, clock: Arc<Clock>, cfg: SupervisorConfig, seed: u64) -> Self {
        AgentSupervisor {
            fabric_id: fabric_id.to_string(),
            clock,
            cfg,
            breaker: Mutex::new(CircuitBreaker::new(cfg.breaker)),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            journal: Mutex::new(Vec::new()),
            degraded: Mutex::new(Vec::new()),
            state_gauge: ofmf_obs::gauge(&format!("ofmf.supervisor.breaker.state.{fabric_id}")),
        }
    }

    /// The fabric this supervisor guards.
    pub fn fabric_id(&self) -> &str {
        &self.fabric_id
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().state()
    }

    /// The full breaker transition history, one formatted line per
    /// transition (stable across runs with the same seed and schedule).
    pub fn transition_log(&self) -> Vec<String> {
        self.breaker.lock().log().iter().map(|t| t.to_string()).collect()
    }

    /// Drain transitions not yet announced as events.
    pub fn take_pending_transitions(&self) -> Vec<BreakerTransition> {
        self.breaker.lock().take_pending()
    }

    fn record(&self, input: BreakerInput, now_ms: u64) -> Option<BreakerTransition> {
        let mut b = self.breaker.lock();
        let transition = b.record(input, now_ms);
        self.state_gauge.set(b.state().gauge_value());
        transition
    }

    /// Feed a successful heartbeat (Open breakers go HalfOpen).
    pub fn on_heartbeat_ok(&self) {
        let _ = self.record(BreakerInput::HeartbeatOk, self.clock.now_ms());
    }

    /// Feed a missed heartbeat.
    pub fn on_heartbeat_missed(&self) {
        let _ = self.record(BreakerInput::HeartbeatMissed, self.clock.now_ms());
    }

    /// The liveness machinery declared the agent dead: open immediately.
    pub fn force_open(&self) {
        let _ = self.record(BreakerInput::ForceOpen, self.clock.now_ms());
    }

    /// A `CircuitOpen` error for the current breaker state.
    pub fn circuit_open_error(&self) -> RedfishError {
        let now = self.clock.now_ms();
        let retry_after_ms = {
            let b = self.breaker.lock();
            match b.state() {
                BreakerState::Open => b.retry_after_ms(now),
                _ => 1,
            }
        };
        RedfishError::CircuitOpen {
            fabric: self.fabric_id.clone(),
            retry_after_ms,
        }
    }

    /// Dispatch one op: breaker admission, then bounded retries with
    /// exponential backoff + seeded jitter against the clock deadline.
    /// Panicking agents are caught and treated as retryable failures.
    ///
    /// Under an active trace the dispatch is a span; every retry attempt is
    /// an annotated child span, and breaker transitions caused by this
    /// dispatch are annotated where they happen.
    pub fn dispatch(&self, agent: &Arc<dyn Agent>, op: &AgentOp) -> RedfishResult<AgentResponse> {
        let m = metrics();
        let mut dspan = ofmf_obs::child_span("ofmf.supervisor.dispatch");
        dspan.annotate("fabric", self.fabric_id.as_str());
        dspan.annotate("op", op.kind());
        let start = self.clock.now_ms();
        match self.breaker.lock().admit(start) {
            Admission::Rejected { retry_after_ms } => {
                m.rejected.inc();
                dspan.annotate("breaker", "rejected: open");
                dspan.set_error();
                return Err(RedfishError::CircuitOpen {
                    fabric: self.fabric_id.clone(),
                    retry_after_ms,
                });
            }
            Admission::Allowed | Admission::Probe => {}
        }
        let mut attempt: u32 = 0;
        loop {
            let mut aspan = ofmf_obs::child_span("ofmf.supervisor.attempt");
            aspan.annotate("attempt", (attempt + 1).to_string());
            let outcome = catch_unwind(AssertUnwindSafe(|| agent.apply(op)));
            let now = self.clock.now_ms();
            let err = match outcome {
                Ok(Ok(resp)) => {
                    if let Some(t) = self.record(BreakerInput::OpSuccess, now) {
                        dspan.annotate("breaker", t.to_string());
                    }
                    return Ok(resp);
                }
                // A deterministic business rejection is proof the agent is
                // responsive — it feeds the breaker as a success.
                Ok(Err(e)) if !retryable(&e) => {
                    if let Some(t) = self.record(BreakerInput::OpSuccess, now) {
                        dspan.annotate("breaker", t.to_string());
                    }
                    return Err(e);
                }
                Ok(Err(e)) => e,
                Err(_) => {
                    RedfishError::AgentUnavailable(format!("agent for fabric {} panicked mid-op", self.fabric_id))
                }
            };
            aspan.set_error();
            aspan.annotate("error", err.to_string());
            if let Some(t) = self.record(BreakerInput::OpFailure, now) {
                dspan.annotate("breaker", t.to_string());
            }
            drop(aspan);
            attempt += 1;
            if self.breaker_state() == BreakerState::Open {
                m.exhausted.inc();
                dspan.set_error();
                return Err(self.circuit_open_error());
            }
            if attempt >= self.cfg.retry.max_attempts {
                m.exhausted.inc();
                dspan.set_error();
                return Err(RedfishError::AgentUnavailable(format!(
                    "fabric {}: gave up after {attempt} attempts: {err}",
                    self.fabric_id
                )));
            }
            let backoff = self.backoff_ms(attempt);
            if now.saturating_sub(start) + backoff > self.cfg.retry.deadline_ms {
                m.deadline_exceeded.inc();
                dspan.set_error();
                return Err(RedfishError::AgentUnavailable(format!(
                    "fabric {}: deadline of {} ms exceeded after {attempt} attempts: {err}",
                    self.fabric_id, self.cfg.retry.deadline_ms
                )));
            }
            m.retries.inc();
            self.clock.wait_ms(backoff);
        }
    }

    fn backoff_ms(&self, attempt: u32) -> u64 {
        let base = self
            .cfg
            .retry
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.cfg.retry.backoff_max_ms);
        let jitter = if self.cfg.retry.jitter_ms > 0 {
            self.rng.lock().gen_range(0..self.cfg.retry.jitter_ms + 1)
        } else {
            0
        };
        base + jitter
    }

    // ------------------------------------------------------------- journal

    /// Journal a teardown op for replay once the agent heartbeats back.
    /// Identical pending ops are deduplicated.
    pub fn journal_teardown(&self, op: &AgentOp) {
        let mut j = self.journal.lock();
        if !j.iter().any(|o| o == op) {
            j.push(op.clone());
            metrics().journal_depth.add(1);
        }
    }

    /// Take every journaled op (replay path).
    pub fn take_journal(&self) -> Vec<AgentOp> {
        let ops = std::mem::take(&mut *self.journal.lock());
        metrics().journal_depth.sub(ops.len() as i64);
        ops
    }

    /// Pending journal depth.
    pub fn journal_len(&self) -> usize {
        self.journal.lock().len()
    }

    /// Copy of the pending journal without draining it (snapshot path: the
    /// WAL snapshot persists undrained teardowns, so a crash between
    /// snapshot and replay loses nothing).
    pub fn peek_journal(&self) -> Vec<AgentOp> {
        self.journal.lock().clone()
    }

    /// Count a successful journal replay.
    pub fn count_replayed(&self) {
        metrics().replayed.inc();
    }

    // ------------------------------------------------------- degraded state

    /// Remember the prior `Status` of resources being degraded.
    pub fn set_degraded(&self, prior: Vec<(ODataId, Value)>) {
        *self.degraded.lock() = prior;
    }

    /// Take the saved pre-outage `Status` values (recovery path).
    pub fn take_degraded(&self) -> Vec<(ODataId, Value)> {
        std::mem::take(&mut *self.degraded.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::NullAgent;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn breaker(threshold: u32, cooldown: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
        })
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_via_probe() {
        let mut b = breaker(3, 100);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(BreakerInput::OpFailure, 1);
        b.record(BreakerInput::OpFailure, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(BreakerInput::OpFailure, 3);
        assert_eq!(b.state(), BreakerState::Open);
        // Rejected during cooldown, with a live countdown.
        assert_eq!(b.admit(3), Admission::Rejected { retry_after_ms: 100 });
        assert_eq!(b.admit(53), Admission::Rejected { retry_after_ms: 50 });
        // Cooldown elapsed: probe admitted, success closes.
        assert_eq!(b.admit(103), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(BreakerInput::OpSuccess, 104);
        assert_eq!(b.state(), BreakerState::Closed);
        let causes: Vec<&str> = b.log().iter().map(|t| t.cause).collect();
        assert_eq!(causes, vec!["failure-threshold", "cooldown-elapsed", "probe-success"]);
    }

    #[test]
    fn probe_failure_reopens() {
        let mut b = breaker(1, 10);
        b.record(BreakerInput::OpFailure, 0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(10), Admission::Probe);
        b.record(BreakerInput::OpFailure, 11);
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown restarts from the re-open.
        assert_eq!(b.admit(12), Admission::Rejected { retry_after_ms: 9 });
    }

    #[test]
    fn heartbeat_recovery_half_opens_without_waiting_cooldown() {
        let mut b = breaker(1, 1_000_000);
        b.record(BreakerInput::ForceOpen, 5);
        assert_eq!(b.state(), BreakerState::Open);
        b.record(BreakerInput::HeartbeatOk, 6);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record(BreakerInput::OpSuccess, 7);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = breaker(3, 10);
        b.record(BreakerInput::OpFailure, 0);
        b.record(BreakerInput::OpFailure, 1);
        b.record(BreakerInput::OpSuccess, 2);
        b.record(BreakerInput::OpFailure, 3);
        b.record(BreakerInput::OpFailure, 4);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    struct FailingAgent {
        fail_first: AtomicU32,
    }

    impl Agent for FailingAgent {
        fn info(&self) -> crate::agent::AgentInfo {
            crate::agent::AgentInfo {
                fabric_id: "FLAKY".into(),
                technology: "CXL".into(),
                version: "t".into(),
            }
        }
        fn discover(&self) -> Vec<(ODataId, Value)> {
            Vec::new()
        }
        fn apply(&self, _op: &AgentOp) -> RedfishResult<AgentResponse> {
            if self.fail_first.load(Ordering::Acquire) > 0 {
                self.fail_first.fetch_sub(1, Ordering::AcqRel);
                return Err(RedfishError::AgentUnavailable("injected".into()));
            }
            Ok(AgentResponse::default())
        }
        fn drain_events(&self) -> Vec<crate::agent::AgentEvent> {
            Vec::new()
        }
        fn sample_telemetry(&self) -> Vec<crate::agent::AgentMetric> {
            Vec::new()
        }
    }

    fn sup(cfg: SupervisorConfig) -> (AgentSupervisor, Arc<Clock>) {
        let clock = Arc::new(Clock::manual());
        (AgentSupervisor::new("FLAKY", Arc::clone(&clock), cfg, 42), clock)
    }

    #[test]
    fn dispatch_retries_transient_failures() {
        let (s, clock) = sup(SupervisorConfig::default());
        let agent: Arc<dyn Agent> = Arc::new(FailingAgent {
            fail_first: AtomicU32::new(2),
        });
        let op = AgentOp::DeleteZone {
            zone: ODataId::new("/z"),
        };
        assert!(s.dispatch(&agent, &op).is_ok());
        // Backoffs advanced the manual clock deterministically.
        assert!(clock.now_ms() > 0);
        assert_eq!(s.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn dispatch_gives_up_and_breaker_opens() {
        let mut cfg = SupervisorConfig::default();
        cfg.breaker.failure_threshold = 3;
        cfg.retry.max_attempts = 4;
        let (s, _clock) = sup(cfg);
        let agent: Arc<dyn Agent> = Arc::new(FailingAgent {
            fail_first: AtomicU32::new(u32::MAX),
        });
        let op = AgentOp::DeleteZone {
            zone: ODataId::new("/z"),
        };
        let err = s.dispatch(&agent, &op).unwrap_err();
        assert!(matches!(err, RedfishError::CircuitOpen { .. }), "{err}");
        assert_eq!(s.breaker_state(), BreakerState::Open);
        // Further dispatches are rejected without touching the agent.
        let err = s.dispatch(&agent, &op).unwrap_err();
        assert!(matches!(err, RedfishError::CircuitOpen { .. }));
    }

    #[test]
    fn panicking_agent_is_contained() {
        struct PanicAgent;
        impl Agent for PanicAgent {
            fn info(&self) -> crate::agent::AgentInfo {
                crate::agent::AgentInfo {
                    fabric_id: "BOOM".into(),
                    technology: "CXL".into(),
                    version: "t".into(),
                }
            }
            fn discover(&self) -> Vec<(ODataId, Value)> {
                Vec::new()
            }
            fn apply(&self, _op: &AgentOp) -> RedfishResult<AgentResponse> {
                panic!("agent bug");
            }
            fn drain_events(&self) -> Vec<crate::agent::AgentEvent> {
                Vec::new()
            }
            fn sample_telemetry(&self) -> Vec<crate::agent::AgentMetric> {
                Vec::new()
            }
        }
        let (s, _clock) = sup(SupervisorConfig::default());
        let agent: Arc<dyn Agent> = Arc::new(PanicAgent);
        let err = s
            .dispatch(
                &agent,
                &AgentOp::DeleteZone {
                    zone: ODataId::new("/z"),
                },
            )
            .unwrap_err();
        assert_eq!(err.http_status(), 503);
    }

    #[test]
    fn business_errors_pass_through_without_retries() {
        let (s, clock) = sup(SupervisorConfig::default());
        let agent: Arc<dyn Agent> = Arc::new(NullAgent::new("N", vec![]));
        let err = s
            .dispatch(
                &agent,
                &AgentOp::InjectFault {
                    description: "x".into(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, RedfishError::BadRequest(_)));
        assert_eq!(clock.now_ms(), 0, "no backoff for deterministic rejections");
        assert_eq!(s.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn journal_dedups_and_drains() {
        let (s, _clock) = sup(SupervisorConfig::default());
        let op = AgentOp::Disconnect {
            connection: ODataId::new("/c1"),
        };
        s.journal_teardown(&op);
        s.journal_teardown(&op);
        assert_eq!(s.journal_len(), 1);
        assert_eq!(s.take_journal().len(), 1);
        assert_eq!(s.journal_len(), 0);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let clock = Arc::new(Clock::manual());
        let a = AgentSupervisor::new("F", Arc::clone(&clock), SupervisorConfig::default(), 7);
        let b = AgentSupervisor::new("F", Arc::clone(&clock), SupervisorConfig::default(), 7);
        let seq_a: Vec<u64> = (1..6).map(|i| a.backoff_ms(i)).collect();
        let seq_b: Vec<u64> = (1..6).map(|i| b.backoff_ms(i)).collect();
        assert_eq!(seq_a, seq_b);
    }
}
