//! Deliberately acquires two locks in opposite orders — sequentially, so
//! the process never hangs — and asserts the lockcheck graph reports the
//! A→B→A cycle with both acquisition sites named.
//!
//! This lives in its own integration-test binary on purpose: the lock
//! graph is process-global, and the injected cycle must not contaminate
//! the zero-cycle assertions the other suites make.

#![cfg(feature = "lockcheck")]

use parking_lot::Mutex;

#[test]
fn opposite_order_is_reported_as_cycle_from_a_single_clean_run() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);

    // Path 1: A then B.
    let site_ab = line!() + 2;
    {
        let _ga = a.lock(); // ofmf-lint: allow(lock-discipline, "deliberate AB half of the injected inversion this fixture asserts on")
        let _gb = b.lock(); // ofmf-lint: allow(lock-discipline, "deliberate AB half of the injected inversion this fixture asserts on")
    }
    // Path 2: B then A. Runs after path 1 released everything, so there is
    // no deadlock — but the order inversion is now witnessed in the graph.
    let site_ba = line!() + 2;
    {
        let _gb = b.lock(); // ofmf-lint: allow(lock-discipline, "deliberate BA half of the injected inversion this fixture asserts on")
        let _ga = a.lock(); // ofmf-lint: allow(lock-discipline, "deliberate BA half of the injected inversion this fixture asserts on")
    }

    let report = parking_lot::lock_order_report();
    assert!(
        !report.cycles.is_empty(),
        "AB/BA acquisition order must surface as a potential deadlock:\n{}",
        report.render()
    );
    let rendered = report.render();
    // Both inverted acquisition sites must be named in the report.
    let ab = format!("lockcheck_inject.rs:{site_ab}");
    let ba = format!("lockcheck_inject.rs:{site_ba}");
    assert!(rendered.contains(&ab), "missing site {ab} in:\n{rendered}");
    assert!(rendered.contains(&ba), "missing site {ba} in:\n{rendered}");
}
