//! Lock-order discipline check for the striped telemetry store: concurrent
//! ingest over many stripes must leave the lockcheck graph acyclic (each
//! stripe is locked on its own, never nested inside another stripe).

#![cfg(feature = "lockcheck")]

use ofmf_core::clock::Clock;
use ofmf_core::events::EventService;
use ofmf_core::telemetry::TelemetryService;
use redfish_model::ODataId;
use std::sync::Arc;

#[test]
fn concurrent_striped_ingest_is_cycle_free() {
    let clock = Arc::new(Clock::manual());
    let events = Arc::new(EventService::new(Arc::clone(&clock)));
    let tel = Arc::new(TelemetryService::new(Arc::clone(&clock)));

    let mut handles = Vec::new();
    for t in 0..4 {
        let tel = Arc::clone(&tel);
        let events = Arc::clone(&events);
        handles.push(std::thread::spawn(move || {
            for round in 0..50 {
                let samples: Vec<ofmf_core::agent::AgentMetric> = (0..32)
                    .map(|i| ofmf_core::agent::AgentMetric {
                        metric_id: format!("Metric{}", (t * 31 + i * 7 + round) % 64).into(),
                        origin: ODataId::new(format!("/redfish/v1/Chassis/c{i}")),
                        value: i as f64,
                    })
                    .collect();
                tel.ingest(&samples, &events);
            }
        }));
    }
    for h in handles {
        h.join().expect("ingest thread");
    }

    let report = parking_lot::lock_order_report();
    assert!(
        report.cycles.is_empty(),
        "telemetry stripe discipline must be acyclic:\n{}",
        report.render()
    );
}
