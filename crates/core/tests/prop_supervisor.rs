//! Property tests for the circuit-breaker state machine: arbitrary
//! success/failure/heartbeat sequences never reach an invalid transition,
//! and a `HalfOpen` probe success always re-closes the breaker.

use ofmf_core::supervisor::{Admission, BreakerConfig, BreakerInput, BreakerState, CircuitBreaker};
use proptest::prelude::*;

/// One step of a driving schedule: either feed a signal or attempt an
/// admission (which may itself transition Open → HalfOpen).
#[derive(Debug, Clone, Copy)]
enum Step {
    Feed(BreakerInput),
    Admit,
    /// Let `ms` elapse before the next step.
    Wait(u64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Feed(BreakerInput::OpSuccess)),
        Just(Step::Feed(BreakerInput::OpFailure)),
        Just(Step::Feed(BreakerInput::HeartbeatOk)),
        Just(Step::Feed(BreakerInput::HeartbeatMissed)),
        Just(Step::Feed(BreakerInput::ForceOpen)),
        Just(Step::Admit),
        (0u64..400).prop_map(Step::Wait),
    ]
}

/// Every transition the machine may legally make.
fn valid_transition(from: BreakerState, to: BreakerState, cause: &str) -> bool {
    use BreakerState::*;
    matches!(
        (from, to, cause),
        (Closed, Open, "failure-threshold")
            | (Closed, Open, "heartbeats-lost")
            | (HalfOpen, Open, "heartbeats-lost")
            | (Open, HalfOpen, "cooldown-elapsed")
            | (Open, HalfOpen, "heartbeat-recovered")
            | (HalfOpen, Closed, "probe-success")
            | (HalfOpen, Open, "probe-failure")
            | (HalfOpen, Open, "heartbeat-missed")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn breaker_never_makes_an_invalid_transition(
        steps in prop::collection::vec(step_strategy(), 0..120),
        threshold in 1u32..6,
        cooldown in 1u64..300,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
        });
        let mut now: u64 = 0;
        for step in &steps {
            match step {
                Step::Feed(input) => {
                    b.record(*input, now);
                }
                Step::Admit => {
                    let admission = b.admit(now);
                    // Admission decisions agree with the (possibly updated)
                    // state.
                    match admission {
                        Admission::Allowed => prop_assert_eq!(b.state(), BreakerState::Closed),
                        Admission::Probe => prop_assert_eq!(b.state(), BreakerState::HalfOpen),
                        Admission::Rejected { retry_after_ms } => {
                            prop_assert_eq!(b.state(), BreakerState::Open);
                            prop_assert!(retry_after_ms >= 1 && retry_after_ms <= cooldown,
                                "retry_after {} outside (0, {}]", retry_after_ms, cooldown);
                        }
                    }
                }
                Step::Wait(ms) => now += ms,
            }
        }
        // The recorded log is a chain of valid transitions with
        // monotonically non-decreasing timestamps, starting from Closed.
        let mut state = BreakerState::Closed;
        let mut last_ms = 0u64;
        for t in b.log() {
            prop_assert_eq!(t.from, state, "log chain broken at {}", t);
            prop_assert!(valid_transition(t.from, t.to, t.cause), "invalid transition {}", t);
            prop_assert!(t.at_ms >= last_ms, "time went backwards at {}", t);
            state = t.to;
            last_ms = t.at_ms;
        }
        prop_assert_eq!(state, b.state(), "log out of sync with live state");
    }

    #[test]
    fn probe_success_always_recloses(
        steps in prop::collection::vec(step_strategy(), 0..80),
        threshold in 1u32..6,
        cooldown in 1u64..300,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms: cooldown,
        });
        let mut now: u64 = 0;
        for step in &steps {
            match step {
                Step::Feed(input) => {
                    b.record(*input, now);
                }
                Step::Admit => { let _ = b.admit(now); }
                Step::Wait(ms) => now += ms,
            }
        }
        // From wherever the schedule left us, drive to HalfOpen and probe:
        // the breaker must re-close.
        b.record(BreakerInput::ForceOpen, now);
        now += cooldown;
        prop_assert_eq!(b.admit(now), Admission::Probe);
        b.record(BreakerInput::OpSuccess, now);
        prop_assert_eq!(b.state(), BreakerState::Closed);
        // And a closed breaker admits immediately.
        prop_assert_eq!(b.admit(now), Admission::Allowed);
    }

    #[test]
    fn open_breaker_never_admits_before_cooldown(
        failures in 1u32..10,
        cooldown in 2u64..500,
        elapsed_frac in 0u64..100,
    ) {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: cooldown,
        });
        let opened_at = u64::from(failures) * 7;
        b.record(BreakerInput::OpFailure, opened_at);
        prop_assert_eq!(b.state(), BreakerState::Open);
        // Any instant strictly inside the cooldown window rejects.
        let inside = opened_at + (cooldown - 1) * elapsed_frac / 100;
        prop_assert!(matches!(b.admit(inside), Admission::Rejected { .. }));
        // The first instant at/after the boundary probes.
        prop_assert_eq!(b.admit(opened_at + cooldown), Admission::Probe);
    }
}
