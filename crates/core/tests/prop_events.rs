//! Property test for the subscription routing index: for ANY population of
//! subscription filters and ANY publish origin, the indexed fan-out delivers
//! to exactly the same subscriber set as the pre-index linear scan — with
//! unsubscribes interleaved, so incremental index maintenance is exercised
//! too.

use ofmf_core::clock::Clock;
use ofmf_core::events::EventService;
use ofmf_core::tree::bootstrap;
use proptest::prelude::*;
use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use redfish_model::Registry;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Origin paths spanning the interesting routing shapes: different
/// top-level collections, nested members, root documents (which key to the
/// wildcard list), and non-standard prefixes.
fn origin_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        // Members of the usual top-level collections, two depths.
        (
            prop_oneof![
                Just("Fabrics"),
                Just("Systems"),
                Just("Chassis"),
                Just("StorageServices")
            ],
            0u32..4,
            0u32..4,
        )
            .prop_map(|(seg, m, leaf)| match leaf {
                0 => format!("/redfish/v1/{seg}/m{m}"),
                l => format!("/redfish/v1/{seg}/m{m}/Parts/p{}", l - 1),
            }),
        // Root-ish paths: span every segment.
        Just("/redfish/v1".to_string()),
        Just("/redfish/v1/".to_string()),
    ]
}

fn event_type_strategy() -> impl Strategy<Value = EventType> {
    prop::sample::select(EventType::ALL.to_vec())
}

/// A subscription's filters: 0–2 event types (0 = wildcard), 0–3 origin
/// subtrees (0 = whole tree).
fn filter_strategy() -> impl Strategy<Value = (Vec<EventType>, Vec<String>)> {
    (
        prop::collection::vec(event_type_strategy(), 0..3),
        prop::collection::vec(origin_strategy(), 0..4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_routing_equals_linear_matching(
        filters in prop::collection::vec(filter_strategy(), 1..20),
        publishes in prop::collection::vec((event_type_strategy(), origin_strategy()), 1..20),
        // Indices (mod population) of subscriptions dropped mid-run, so the
        // incrementally-maintained index is exercised, not just the built one.
        unsubs in prop::collection::vec(0usize..20, 0..6),
    ) {
        let reg_i = Registry::new();
        bootstrap(&reg_i, "prop").unwrap();
        let reg_l = Registry::new();
        bootstrap(&reg_l, "prop").unwrap();
        let indexed = EventService::new(Arc::new(Clock::manual())).with_queue_depth(4096);
        let linear = EventService::new(Arc::new(Clock::manual()))
            .with_queue_depth(4096)
            .with_linear_matching();

        let mut subs_i = Vec::new();
        let mut subs_l = Vec::new();
        for (k, (types, origins)) in filters.iter().enumerate() {
            let origins: Vec<ODataId> = origins.iter().map(ODataId::new).collect();
            let dest = format!("channel://s{k}");
            subs_i.push(indexed.subscribe(&reg_i, &dest, types.clone(), origins.clone()).unwrap());
            subs_l.push(linear.subscribe(&reg_l, &dest, types.clone(), origins).unwrap());
        }
        // Interleave unsubscribes with publishes: drop one subscription,
        // publish a few, repeat.
        let mut dropped = BTreeSet::new();
        let mut chunks = publishes.chunks(publishes.len().div_ceil(unsubs.len() + 1));
        let run = |svc_pubs: &[(EventType, String)]| {
            for (t, origin) in svc_pubs {
                let origin = ODataId::new(origin);
                let n_i = indexed.publish(*t, &origin, "p", "OK");
                let n_l = linear.publish(*t, &origin, "p", "OK");
                prop_assert_eq!(n_i, n_l, "delivery counts diverged for {:?} {}", t, origin);
            }
            Ok(())
        };
        if let Some(chunk) = chunks.next() {
            run(chunk)?;
        }
        for u in &unsubs {
            let k = u % filters.len();
            if dropped.insert(k) {
                indexed.unsubscribe(&reg_i, &subs_i[k].0).unwrap();
                linear.unsubscribe(&reg_l, &subs_l[k].0).unwrap();
            }
            if let Some(chunk) = chunks.next() {
                run(chunk)?;
            }
        }
        for chunk in chunks {
            run(chunk)?;
        }

        // Identical delivery SETS, subscriber by subscriber: each live
        // queue holds the same number of batches with the same record
        // payloads in the same order.
        for (k, ((_, rx_i), (_, rx_l))) in subs_i.iter().zip(subs_l.iter()).enumerate() {
            let mut msgs_i = Vec::new();
            while let Ok(b) = rx_i.try_recv() {
                for r in b.events.iter() {
                    msgs_i.push((r.event_type, r.origin_of_condition.odata_id.as_str().to_string()));
                }
            }
            let mut msgs_l = Vec::new();
            while let Ok(b) = rx_l.try_recv() {
                for r in b.events.iter() {
                    msgs_l.push((r.event_type, r.origin_of_condition.odata_id.as_str().to_string()));
                }
            }
            prop_assert_eq!(&msgs_i, &msgs_l, "subscriber {} saw different deliveries", k);
        }
    }
}
