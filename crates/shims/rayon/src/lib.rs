//! Offline shim for `rayon`.
//!
//! Maps the parallel-iterator entry points onto plain sequential std
//! iterators. Call sites keep their `.par_iter().map(...).collect()` shape;
//! they simply run on one thread. Adequate for correctness and for the
//! deterministic benchmarks in this workspace.

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    /// `into_par_iter()` — sequential stand-in for rayon's version.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Consume `self`, yielding a (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` — sequential stand-in borrowing `self`.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed iterator type.
        type Iter: Iterator;

        /// Borrow `self`, yielding a (sequential) iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
    where
        &'a T: IntoIterator,
    {
        type Iter = <&'a T as IntoIterator>::IntoIter;

        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_stand_ins_behave_like_iterators() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }
}
