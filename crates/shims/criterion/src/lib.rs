//! Offline shim for `criterion`.
//!
//! A small wall-clock harness with criterion's macro and builder surface:
//! `criterion_group!`/`criterion_main!`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`. Each benchmark is
//! timed over a fixed batch of iterations after a short warm-up, and the
//! mean per-iteration time is printed — enough to compare configurations
//! (e.g. the observability ablation) without statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 50,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 50, None, f);
        self
    }
}

/// Throughput annotation for a group (reported next to timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// A named set of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, tput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: samples as u64,
        total: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut b);
    if b.timed_iters == 0 {
        println!("{label}: no iterations recorded");
        return;
    }
    let mean = b.total.as_secs_f64() / b.timed_iters as f64;
    let rate = match tput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!(
                "  ({:.0} elem/s)",
                n as f64 * b.timed_iters as f64 / b.total.as_secs_f64()
            )
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 * b.timed_iters as f64 / b.total.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{label}: {}{rate}", format_duration(mean));
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    total: Duration,
    timed_iters: u64,
}

impl Bencher {
    /// Time `routine` over a fixed batch of iterations (plus warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters.min(3) {
            std::hint::black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.total += start.elapsed();
        self.timed_iters += self.iters;
    }

    /// Time `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.timed_iters += 1;
        }
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(10);
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("add", 5), &5u64, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::SmallInput)
        });
        group.finish();
        assert!(count >= 10);
    }
}
