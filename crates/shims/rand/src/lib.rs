//! Offline shim for `rand`.
//!
//! Provides the tiny slice of the rand API this workspace touches:
//! `StdRng::seed_from_u64`, `Rng::gen` for `f64`/`u64`/`u32`/`bool`, and
//! `Rng::gen_range` over float and integer ranges. The generator is
//! SplitMix64 — deterministic, fast, and statistically fine for simulation
//! noise (not cryptographic).

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, `rand::SeedableRng` style.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from raw bits, backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the span sizes used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u32, u64, usize, i64);

/// Convenience sampling methods, `rand::Rng` style.
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Draw `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
