//! The JSON value tree shared by the `serde` and `serde_json` shims.
//!
//! Lives here (rather than in `serde_json`) so the `Serialize` /
//! `Deserialize` traits can name it without a dependency cycle;
//! `serde_json` re-exports everything.

use std::borrow::Cow;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

/// A JSON number. Integers are kept exact; floats carry `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point (finite).
    Float(f64),
}

impl Number {
    /// Wrap a `u64`.
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    /// Wrap an `i64`, normalizing non-negative values to `PosInt`.
    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Wrap an `f64`. Non-finite values have no JSON representation and
    /// collapse to `0.0`; callers guard with [`f64::is_finite`] first.
    pub fn from_f64(n: f64) -> Number {
        Number::Float(if n.is_finite() { n } else { 0.0 })
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// The value as `f64` (always possible, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }

    /// True if this number was stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::PosInt(_), Number::NegInt(_)) | (Number::NegInt(_), Number::PosInt(_)) => false,
            // Mixed int/float: compare numerically so `2` == `2.0` after a
            // print/parse round trip.
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x == x.trunc() && x.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as a float.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring
/// `serde_json::Map<String, Value>` with `preserve_order`.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Insert, replacing in place (order preserved). Returns the old value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Vacant-or-occupied entry for in-place updates.
    pub fn entry(&mut self, key: impl Into<String>) -> Entry<'_> {
        Entry {
            map: self,
            key: key.into(),
        }
    }

    /// Iterate `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate with mutable values.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    // Key order is an artifact of construction, not content: compare as sets.
    fn eq(&self, other: &Map) -> bool {
        self.len() == other.len() && self.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter =
        std::iter::Map<std::slice::Iter<'a, (String, Value)>, fn(&'a (String, Value)) -> (&'a String, &'a Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A view into a single [`Map`] slot, from [`Map::entry`].
pub struct Entry<'a> {
    map: &'a mut Map,
    key: String,
}

impl<'a> Entry<'a> {
    /// Insert `default` if the key is vacant; return the slot either way.
    pub fn or_insert(self, default: Value) -> &'a mut Value {
        let idx = match self.map.entries.iter().position(|(k, _)| *k == self.key) {
            Some(i) => i,
            None => {
                self.map.entries.push((self.key, default));
                self.map.entries.len() - 1
            }
        };
        &mut self.map.entries[idx].1
    }

    /// Like [`Entry::or_insert`] with a lazily-built default.
    pub fn or_insert_with(self, default: impl FnOnce() -> Value) -> &'a mut Value {
        let idx = match self.map.entries.iter().position(|(k, _)| *k == self.key) {
            Some(i) => i,
            None => {
                let v = default();
                self.map.entries.push((self.key, v));
                self.map.entries.len() - 1
            }
        };
        &mut self.map.entries[idx].1
    }
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Borrow the array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the array mutably.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object, if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the object mutably.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for booleans.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True for numbers.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True for strings.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Index by key or position, returning `None` on mismatch.
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// Mutable [`Value::get`].
    pub fn get_mut<I: Index>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    /// Replace `self` with `Null`, returning the old value.
    pub fn take(&mut self) -> Value {
        std::mem::take(self)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

// -------- scalar comparisons so `v["n"] == 3` / `v["s"] == "x"` just work

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().is_some_and(|n| i64::try_from(*other).map(|o| n == o).unwrap_or(false))
                    || self.as_u64().is_some_and(|n| u64::try_from(*other).map(|o| n == o).unwrap_or(false))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

// ----------------------------------------------------------- indexing

/// Types usable as `Value` indices: `&str`/`String` (objects) and `usize`
/// (arrays).
pub trait Index {
    /// Non-panicking lookup.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    /// Non-panicking mutable lookup.
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
    /// Lookup for `IndexMut`, inserting intermediate objects on demand.
    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value;
    /// Description for panic messages.
    fn describe(&self) -> Cow<'static, str>;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_object_mut().and_then(|m| m.get_mut(self))
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self).or_insert(Value::Null),
            other => panic!("cannot index {} with key {self:?}", kind(other)),
        }
    }

    fn describe(&self) -> Cow<'static, str> {
        Cow::Owned(format!("key {self:?}"))
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        self.as_str().index_into_mut(v)
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_or_insert(v)
    }

    fn describe(&self) -> Cow<'static, str> {
        self.as_str().describe()
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(*self)
                    .unwrap_or_else(|| panic!("index {self} out of bounds (len {len})"))
            }
            other => panic!("cannot index {} with {self}", kind(other)),
        }
    }

    fn describe(&self) -> Cow<'static, str> {
        Cow::Owned(format!("index {self}"))
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        (**self).index_into_mut(v)
    }

    fn index_or_insert<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (**self).index_or_insert(v)
    }

    fn describe(&self) -> Cow<'static, str> {
        (**self).describe()
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (matches `serde_json::to_string`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Append the JSON string-literal form of `s` (quotes and escapes included).
#[doc(hidden)]
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

static NULL: Value = Value::Null;

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;

    // Missing keys read as `Null`, matching serde_json.
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: Index> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_or_insert(self)
    }
}
