//! Offline shim for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible-enough replacement. Instead
//! of serde's visitor-based data model, serialization goes directly through
//! the JSON [`value::Value`] tree that `serde_json` (also shimmed) re-exports.
//! The `#[derive(Serialize, Deserialize)]` macros are provided by the
//! sibling `serde_derive` shim and honour the subset of `#[serde(...)]`
//! attributes this repository uses: `rename`, `default`,
//! `skip_serializing_if`, `flatten`, `transparent`.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};

use value::{Map, Number, Value};

/// Serialization: convert `self` into a JSON value tree.
pub trait Serialize {
    /// Build the JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Deserialization: rebuild `Self` from a JSON value tree.
pub trait Deserialize: Sized {
    /// Parse `Self` out of `v`.
    fn from_json(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error for an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", kind_of(got)))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

fn kind_of(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Number(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

// ------------------------------------------------------------- Serialize

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        // Non-finite floats have no JSON representation; serialize as null
        // (the same shape serde_json produces for an unrepresentable float).
        if self.is_finite() {
            Value::Number(Number::from_f64(*self))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::from_f64(f64::from(*self)))
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_json());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<u64, V> {
    fn to_json(&self) -> Value {
        // JSON object keys are strings; integer keys stringify (as serde_json does).
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.to_json());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_json(&self) -> Value {
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.clone(), v.to_json());
        }
        Value::Object(m)
    }
}

impl Serialize for Map {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// ----------------------------------------------------------- Deserialize

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("a boolean", v))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("an unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("an integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("a number", v))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
        arr.iter().map(T::from_json).collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_json(v).map(Into::into)
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_json(v).map(|v| v.into_iter().collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_json(v).map(|v| v.into_iter().collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("an object", v))?;
        obj.iter()
            .map(|(k, v)| V::from_json(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<u64, V> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("an object", v))?;
        obj.iter()
            .map(|(k, v)| {
                let key: u64 = k.parse().map_err(|_| DeError(format!("invalid u64 map key {k:?}")))?;
                V::from_json(v).map(|v| (key, v))
            })
            .collect()
    }
}

impl Deserialize for &'static str {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        // The shim's data model is owned, so borrowed strings are produced by
        // leaking. Only round-trip tests deserialize `&'static str` fields
        // (fixed metric names), so the leak is tiny and bounded per run.
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| DeError::expected("a string", v))
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::expected("an object", v))?;
        obj.iter()
            .map(|(k, v)| V::from_json(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("an array", v))?;
                Ok(($($t::from_json(
                    arr.get($n).ok_or_else(|| DeError(format!("tuple element {} missing", $n)))?
                )?,)+))
            }
        }
    )*};
}
de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
