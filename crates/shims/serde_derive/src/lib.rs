//! Offline shim for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` that parse
//! the input token stream directly (no `syn`/`quote` — those crates are not
//! available offline) and emit impls of the shim traits in `serde`.
//!
//! Supported shapes (the subset this workspace uses):
//! - named-field structs, with `#[serde(rename = "...")]`,
//!   `#[serde(skip_serializing_if = "path")]`, `#[serde(default)]` and
//!   `#[serde(flatten)]` field attributes plus `#[serde(transparent)]` at
//!   the container level;
//! - newtype (single-field tuple) structs, serialized as the inner value;
//! - enums with unit, newtype and struct variants, externally tagged.
//!
//! Generic types are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ model

struct Item {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Field {
    /// Rust identifier.
    ident: String,
    /// JSON key (rename applied).
    key: String,
    skip_serializing_if: Option<String>,
    default: bool,
    flatten: bool,
}

struct Variant {
    ident: String,
    key: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    /// Tuple variant with N fields (N == 1 is the common newtype case).
    Tuple(usize),
    Struct(Vec<Field>),
}

// ------------------------------------------------------------------ parse

#[derive(Default)]
struct SerdeAttrs {
    rename: Option<String>,
    skip_serializing_if: Option<String>,
    default: bool,
    flatten: bool,
    transparent: bool,
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let container_attrs = take_attrs(&mut it);
    skip_visibility(&mut it);

    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported ({name})");
    }

    let kind = match (kw.as_str(), it.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Struct(parse_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Kind::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Kind::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde shim derive: unsupported item `{kw}` body {other:?}"),
    };

    Item {
        name,
        transparent: container_attrs.transparent,
        kind,
    }
}

/// Consume leading `#[...]` attributes, folding together any `#[serde(...)]`
/// arguments found; other attributes (`#[doc]`, `#[default]`, ...) are
/// skipped.
fn take_attrs(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> SerdeAttrs {
    let mut out = SerdeAttrs::default();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let group = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde shim derive: malformed attribute {other:?}"),
        };
        let mut inner = group.stream().into_iter();
        let is_serde = matches!(inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            other => panic!("serde shim derive: malformed #[serde] attribute {other:?}"),
        };
        parse_serde_args(args, &mut out);
    }
    out
}

fn parse_serde_args(args: TokenStream, out: &mut SerdeAttrs) {
    let mut it = args.into_iter().peekable();
    while let Some(tt) = it.next() {
        let word = match tt {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde shim derive: unexpected token in #[serde(...)]: {other:?}"),
        };
        let value = if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            it.next();
            match it.next() {
                Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())),
                other => panic!("serde shim derive: expected string after `{word} =`, got {other:?}"),
            }
        } else {
            None
        };
        match word.as_str() {
            "rename" => out.rename = value,
            "skip_serializing_if" => out.skip_serializing_if = value,
            "default" => out.default = true,
            "flatten" => out.flatten = true,
            "transparent" => out.transparent = true,
            other => panic!("serde shim derive: unsupported #[serde({other})] attribute"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
            it.next();
        }
    }
}

/// Parse `name: Type, ...` named fields, honouring per-field serde attrs.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        if it.peek().is_none() {
            break;
        }
        let attrs = take_attrs(&mut it);
        skip_visibility(&mut it);
        let ident = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field, got {other:?}"),
        }
        skip_type(&mut it);
        fields.push(Field {
            key: attrs.rename.clone().unwrap_or_else(|| ident.clone()),
            ident,
            skip_serializing_if: attrs.skip_serializing_if,
            default: attrs.default,
            flatten: attrs.flatten,
        });
    }
    fields
}

/// Skip tokens of one type expression up to (and past) the next top-level
/// comma. Groups are single trees, so only `<`/`>` pairs need depth
/// tracking.
fn skip_type(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it = body.into_iter().peekable();
    let mut n = 0;
    loop {
        if it.peek().is_none() {
            break;
        }
        let _ = take_attrs(&mut it);
        skip_visibility(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_type(&mut it);
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        if it.peek().is_none() {
            break;
        }
        let attrs = take_attrs(&mut it);
        let ident = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                it.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Trailing comma between variants.
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant {
            key: attrs.rename.clone().unwrap_or_else(|| ident.clone()),
            ident,
            shape,
        });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) if item.transparent => {
            let f = &fields[0].ident;
            format!("::serde::Serialize::to_json(&self.{f})")
        }
        Kind::Struct(fields) => {
            let mut s = String::from("let mut __m = ::serde::value::Map::new();\n");
            for f in fields {
                let ident = &f.ident;
                let key = &f.key;
                if f.flatten {
                    s.push_str(&format!(
                        "if let ::serde::value::Value::Object(__o) = \
                         ::serde::Serialize::to_json(&self.{ident}) {{ \
                         for (__k, __v) in __o {{ __m.insert(__k, __v); }} }}\n"
                    ));
                } else if let Some(pred) = &f.skip_serializing_if {
                    s.push_str(&format!(
                        "if !{pred}(&self.{ident}) {{ \
                         __m.insert({key:?}.to_string(), ::serde::Serialize::to_json(&self.{ident})); }}\n"
                    ));
                } else {
                    s.push_str(&format!(
                        "__m.insert({key:?}.to_string(), ::serde::Serialize::to_json(&self.{ident}));\n"
                    ));
                }
            }
            s.push_str("::serde::value::Value::Object(__m)");
            s
        }
        Kind::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Unit => "::serde::value::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vi = &v.ident;
                let key = &v.key;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vi} => ::serde::value::Value::String({key:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vi}(__f0) => {{ \
                         let mut __m = ::serde::value::Map::new(); \
                         __m.insert({key:?}.to_string(), ::serde::Serialize::to_json(__f0)); \
                         ::serde::value::Value::Object(__m) }}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vi}({}) => {{ \
                             let mut __m = ::serde::value::Map::new(); \
                             __m.insert({key:?}.to_string(), ::serde::value::Value::Array(vec![{}])); \
                             ::serde::value::Value::Object(__m) }}\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::from("let mut __inner = ::serde::value::Map::new();\n");
                        for f in fields {
                            let ident = &f.ident;
                            let fkey = &f.key;
                            if let Some(pred) = &f.skip_serializing_if {
                                inner.push_str(&format!(
                                    "if !{pred}({ident}) {{ __inner.insert({fkey:?}.to_string(), \
                                     ::serde::Serialize::to_json({ident})); }}\n"
                                ));
                            } else {
                                inner.push_str(&format!(
                                    "__inner.insert({fkey:?}.to_string(), \
                                     ::serde::Serialize::to_json({ident}));\n"
                                ));
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vi} {{ {} }} => {{ {inner} \
                             let mut __m = ::serde::value::Map::new(); \
                             __m.insert({key:?}.to_string(), ::serde::value::Value::Object(__inner)); \
                             ::serde::value::Value::Object(__m) }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) if item.transparent => {
            let f = &fields[0].ident;
            format!("Ok({name} {{ {f}: ::serde::Deserialize::from_json(__v)? }})")
        }
        Kind::Struct(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"an object ({name})\", __v))?;\n"
            );
            let mut inits = Vec::new();
            for f in fields {
                let ident = &f.ident;
                let key = &f.key;
                if f.flatten {
                    inits.push(format!("{ident}: ::serde::Deserialize::from_json(__v)?"));
                } else if f.default {
                    inits.push(format!(
                        "{ident}: match __obj.get({key:?}) {{ \
                         Some(__x) => ::serde::Deserialize::from_json(__x)?, \
                         None => Default::default() }}"
                    ));
                } else {
                    // Missing keys read as Null: Option fields become None,
                    // required fields fail inside their own from_json.
                    inits.push(format!(
                        "{ident}: ::serde::Deserialize::from_json(\
                         __obj.get({key:?}).unwrap_or(&::serde::value::Value::Null))\
                         .map_err(|e| ::serde::DeError(format!(\"{name}.{key}: {{e}}\")))?"
                    ));
                }
            }
            s.push_str(&format!("Ok({name} {{ {} }})", inits.join(", ")));
            s
        }
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_json(__v)?))"),
        Kind::Tuple(n) => {
            let mut s = format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"an array ({name})\", __v))?;\n"
            );
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_json(__arr.get({i})\
                         .unwrap_or(&::serde::value::Value::Null))?"
                    )
                })
                .collect();
            s.push_str(&format!("Ok({name}({}))", elems.join(", ")));
            s
        }
        Kind::Unit => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vi = &v.ident;
                let key = &v.key;
                match &v.shape {
                    VariantShape::Unit => {
                        str_arms.push_str(&format!("{key:?} => Ok({name}::{vi}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        obj_arms.push_str(&format!(
                            "{key:?} => Ok({name}::{vi}(::serde::Deserialize::from_json(__inner)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_json(__arr.get({i})\
                                     .unwrap_or(&::serde::value::Value::Null))?"
                                )
                            })
                            .collect();
                        obj_arms.push_str(&format!(
                            "{key:?} => {{ let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"an array ({name}::{vi})\", __inner))?; \
                             Ok({name}::{vi}({})) }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = Vec::new();
                        for f in fields {
                            let ident = &f.ident;
                            let fkey = &f.key;
                            if f.default {
                                inits.push(format!(
                                    "{ident}: match __o.get({fkey:?}) {{ \
                                     Some(__x) => ::serde::Deserialize::from_json(__x)?, \
                                     None => Default::default() }}"
                                ));
                            } else {
                                inits.push(format!(
                                    "{ident}: ::serde::Deserialize::from_json(\
                                     __o.get({fkey:?}).unwrap_or(&::serde::value::Value::Null))?"
                                ));
                            }
                        }
                        obj_arms.push_str(&format!(
                            "{key:?} => {{ let __o = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"an object ({name}::{vi})\", __inner))?; \
                             Ok({name}::{vi} {{ {} }}) }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{str_arms}\
                 __other => Err(::serde::DeError(format!(\"unknown {name} variant {{__other:?}}\"))),\n}}\n\
                 }} else if let Some(__obj) = __v.as_object() {{\n\
                 let (__tag, __inner) = __obj.iter().next().ok_or_else(|| \
                 ::serde::DeError(\"empty object for enum {name}\".to_string()))?;\n\
                 match __tag.as_str() {{\n{obj_arms}\
                 __other => Err(::serde::DeError(format!(\"unknown {name} variant {{__other:?}}\"))),\n}}\n\
                 }} else {{\n\
                 Err(::serde::DeError::expected(\"a string or single-key object ({name})\", __v))\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(__v: &::serde::value::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
