//! Lock-order instrumentation: a process-global lock-acquisition graph
//! with cycle detection.
//!
//! Every blocking acquisition through the shim calls [`before_blocking`]
//! with the set of locks the current thread already holds; each
//! `held → acquired` pair becomes a directed edge tagged with the
//! `file:line` (and read/write mode) of both acquisition sites, recorded
//! the first time it is witnessed. [`lock_order_report`] condenses the
//! graph into strongly connected components and materializes one
//! representative cycle per non-trivial component: a cycle means two code
//! paths order the same locks differently — a potential deadlock — and is
//! reported from a single run that never actually hung.
//!
//! The graph's own synchronization uses `std::sync` directly so the
//! instrumentation never observes (or deadlocks on) itself.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::Write as _;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};
use std::time::Instant;

/// How a lock was (or is being) acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `Mutex::lock`.
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Lock => "lock",
            Mode::Read => "read",
            Mode::Write => "write",
        }
    }
}

/// One acquisition site: where in the code a lock was taken, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Site {
    loc: &'static Location<'static>,
    mode: Mode,
}

impl Site {
    fn render(&self) -> String {
        format!("{}:{} ({})", self.loc.file(), self.loc.line(), self.mode.label())
    }
}

/// A witnessed ordering edge: while holding the lock acquired at
/// `held_at`, the thread went on to (try to) acquire the lock at
/// `acquired_at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Process-unique id of the lock that was already held.
    pub from: u64,
    /// Process-unique id of the lock acquired second.
    pub to: u64,
    /// `file:line (mode)` where the held lock had been acquired.
    pub held_at: String,
    /// `file:line (mode)` of the second acquisition.
    pub acquired_at: String,
}

/// A potential deadlock: a cycle of ordering edges.
#[derive(Debug, Clone)]
pub struct LockCycle {
    /// Lock ids along the cycle (each edge goes `lock_ids[i] →
    /// lock_ids[i+1]`, wrapping).
    pub lock_ids: Vec<u64>,
    /// The witnessed edges forming the cycle, with both sites named.
    pub edges: Vec<LockEdge>,
}

impl fmt::Display for LockCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "potential deadlock cycle over {} locks:", self.lock_ids.len())?;
        for e in &self.edges {
            writeln!(
                f,
                "  lock#{} (held at {}) -> lock#{} (acquired at {})",
                e.from, e.held_at, e.to, e.acquired_at
            )?;
        }
        Ok(())
    }
}

/// Snapshot of the lock-order graph plus its cycle analysis.
#[derive(Debug, Clone)]
pub struct LockOrderReport {
    /// Number of distinct lock instances that participated in any nested
    /// acquisition (single, un-nested locks never enter the graph).
    pub locks: usize,
    /// All witnessed ordering edges.
    pub edges: Vec<LockEdge>,
    /// Potential deadlocks: one representative cycle per strongly
    /// connected component of the graph.
    pub cycles: Vec<LockCycle>,
}

impl LockOrderReport {
    /// True when no ordering cycle was witnessed.
    pub fn is_clean(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The cycles whose edges touch a source path containing `needle`
    /// (used by tests to scope assertions to one subsystem).
    pub fn cycles_touching(&self, needle: &str) -> Vec<&LockCycle> {
        self.cycles
            .iter()
            .filter(|c| {
                c.edges
                    .iter()
                    .any(|e| e.held_at.contains(needle) || e.acquired_at.contains(needle))
            })
            .collect()
    }

    /// Human-readable rendering of the full report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "lockcheck: {} locks in graph, {} order edges, {} cycle(s)\n",
            self.locks,
            self.edges.len(),
            self.cycles.len()
        );
        for c in &self.cycles {
            out.push_str(&c.to_string());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Hold-time profiling, contention counting and the blocking sanitizer
// ---------------------------------------------------------------------------

/// Per-acquisition-site hold statistics: a lock-free struct updated on every
/// guard drop. Durations land in log2-ns buckets so quantiles come out of a
/// fixed 48-slot array with no per-sample allocation.
pub struct SiteStats {
    file: &'static str,
    line: u32,
    mode: Mode,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    contended: AtomicU64,
    buckets: [AtomicU64; HOLD_BUCKETS],
}

const HOLD_BUCKETS: usize = 48;

/// One row of [`hold_time_report`].
#[derive(Debug, Clone)]
pub struct SiteHold {
    /// Acquisition site (`file:line`), as named by `#[track_caller]`.
    pub file: String,
    /// 1-based acquisition line.
    pub line: u32,
    /// How the first witnessed acquisition at this site took the lock.
    pub mode: &'static str,
    /// Number of completed hold intervals.
    pub count: u64,
    /// Sum of all hold durations in nanoseconds.
    pub total_ns: u64,
    /// Longest single hold in nanoseconds.
    pub max_ns: u64,
    /// Upper bound of the bucket containing the 99th percentile hold.
    pub p99_ns: u64,
    /// Acquisitions that found the lock already taken (a `try_*` probe
    /// failed before the blocking acquisition).
    pub contended: u64,
}

/// One witnessed blocking operation executed while at least one shim lock
/// was held by the same thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingViolation {
    /// What blocked: `clock.wait_ms`, `chan.recv`, `wal.append.write`, …
    pub kind: String,
    /// Source file of the blocking call (via `#[track_caller]`).
    pub file: String,
    /// 1-based line of the blocking call.
    pub line: u32,
    /// `file:line (mode)` of every lock held at the moment of the call.
    pub held: Vec<String>,
    /// How many times this (kind, site) pair was witnessed.
    pub count: u64,
}

type SiteKey = (&'static str, u32);

fn site_registry() -> &'static StdMutex<HashMap<SiteKey, &'static SiteStats>> {
    static REG: OnceLock<StdMutex<HashMap<SiteKey, &'static SiteStats>>> = OnceLock::new();
    REG.get_or_init(|| StdMutex::new(HashMap::new()))
}

thread_local! {
    static SITE_CACHE: RefCell<HashMap<SiteKey, &'static SiteStats>> = RefCell::new(HashMap::new());
}

/// Whether hold-time profiling is live. Off only when
/// `OFMF_LOCKCHECK_HOLD=0`, so the `rest_throughput` ablation can isolate
/// the profiler's own cost inside an instrumented build.
fn hold_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("OFMF_LOCKCHECK_HOLD").map_or(true, |v| v != "0"))
}

fn site_stats(loc: &'static Location<'static>, mode: Mode) -> &'static SiteStats {
    let key: SiteKey = (loc.file(), loc.line());
    SITE_CACHE.with(|cache| {
        if let Some(s) = cache.borrow().get(&key) {
            return *s;
        }
        let mut reg = site_registry().lock().unwrap_or_else(PoisonError::into_inner);
        let stats = *reg.entry(key).or_insert_with(|| {
            Box::leak(Box::new(SiteStats {
                file: loc.file(),
                line: loc.line(),
                mode,
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
                contended: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }))
        });
        cache.borrow_mut().insert(key, stats);
        stats
    })
}

impl SiteStats {
    fn record_hold(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let bucket = (64 - ns.leading_zeros() as usize).min(HOLD_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn p99_ns(&self) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = count - count / 100;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << i;
            }
        }
        self.max_ns.load(Ordering::Relaxed)
    }
}

/// Count a contended acquisition (the `try_*` probe ahead of the blocking
/// call failed) at the caller's site.
#[track_caller]
pub(crate) fn contended(mode: Mode) {
    site_stats(Location::caller(), mode)
        .contended
        .fetch_add(1, Ordering::Relaxed);
}

/// Snapshot the per-site hold-time statistics, sorted by total hold time
/// descending so the hottest lock sites lead.
pub fn hold_time_report() -> Vec<SiteHold> {
    let reg = site_registry().lock().unwrap_or_else(PoisonError::into_inner);
    let mut out: Vec<SiteHold> = reg
        .values()
        .map(|s| SiteHold {
            file: s.file.to_string(),
            line: s.line,
            mode: s.mode.label(),
            count: s.count.load(Ordering::Relaxed),
            total_ns: s.total_ns.load(Ordering::Relaxed),
            max_ns: s.max_ns.load(Ordering::Relaxed),
            p99_ns: s.p99_ns(),
            contended: s.contended.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then(a.file.cmp(&b.file))
            .then(a.line.cmp(&b.line))
    });
    out
}

struct BlockingLog {
    /// `(kind, file, line) → (held sites of first witness, count)`.
    seen: BTreeMap<(String, &'static str, u32), (Vec<String>, u64)>,
}

fn blocking_log() -> &'static StdMutex<BlockingLog> {
    static LOG: OnceLock<StdMutex<BlockingLog>> = OnceLock::new();
    LOG.get_or_init(|| StdMutex::new(BlockingLog { seen: BTreeMap::new() }))
}

/// The no-blocking-while-locked sanitizer's entry point: call sites that
/// are about to perform an operation that can block on something other
/// than a shim lock (file I/O, `Clock::wait_ms`, channel `recv`,
/// `epoll_wait`) report in here. If the calling thread holds any shim
/// lock, the (kind, caller site, held sites) triple is recorded as a
/// violation for [`blocking_report`] and the lock-audit diff.
#[track_caller]
pub fn blocking_op(kind: &str) {
    let loc = Location::caller();
    let held_sites: Vec<String> = HELD.with(|held| held.borrow().iter().map(|(_, s)| s.render()).collect());
    if held_sites.is_empty() {
        return;
    }
    let mut log = blocking_log().lock().unwrap_or_else(PoisonError::into_inner);
    let entry = log
        .seen
        .entry((kind.to_string(), loc.file(), loc.line()))
        .or_insert_with(|| (held_sites.clone(), 0));
    entry.1 += 1;
    if entry.1 == 1 {
        dump_line(
            "blocking",
            &format!("{kind}\t{}\t{}\t{}", loc.file(), loc.line(), held_sites.join(",")),
        );
    }
}

/// Every witnessed blocking-while-locked violation (first held-set kept).
pub fn blocking_report() -> Vec<BlockingViolation> {
    let log = blocking_log().lock().unwrap_or_else(PoisonError::into_inner);
    log.seen
        .iter()
        .map(|((kind, file, line), (held, count))| BlockingViolation {
            kind: kind.clone(),
            file: file.to_string(),
            line: *line,
            held: held.clone(),
            count: *count,
        })
        .collect()
}

/// Clear the blocking-violation log (tests scope assertions with this).
pub fn blocking_reset() {
    blocking_log()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .seen
        .clear();
}

/// When `OFMF_LOCKCHECK_DIR` is set, witnessed artifacts are appended to
/// per-process files under it (`edges-<pid>.tsv`, `blocking-<pid>.tsv`)
/// the first time they occur, so any exit path — including abort — leaves
/// a complete log for `ofmf-lint --lock-audit`.
fn dump_line(stream: &str, line: &str) {
    static DIR: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();
    let Some(dir) = DIR.get_or_init(|| std::env::var_os("OFMF_LOCKCHECK_DIR").map(std::path::PathBuf::from)) else {
        return;
    };
    static FILES: OnceLock<StdMutex<HashMap<String, std::fs::File>>> = OnceLock::new();
    let files = FILES.get_or_init(|| StdMutex::new(HashMap::new()));
    let mut files = files.lock().unwrap_or_else(PoisonError::into_inner);
    let file = match files.entry(stream.to_string()) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(v) => {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("{stream}-{}.tsv", std::process::id()));
            match std::fs::OpenOptions::new().create(true).append(true).open(path) {
                Ok(f) => v.insert(f),
                Err(_) => return,
            }
        }
    };
    let _ = writeln!(file, "{line}");
}

struct Graph {
    /// `(from, to) → first witnessed sites`.
    edges: HashMap<(u64, u64), (Site, Site)>,
}

fn graph() -> &'static StdMutex<Graph> {
    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| StdMutex::new(Graph { edges: HashMap::new() }))
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static HELD: RefCell<Vec<(u64, Site)>> = const { RefCell::new(Vec::new()) };
}

/// Resolve (lazily assigning) the process-unique id of a lock instance.
pub(crate) fn lock_id(slot: &AtomicU64) -> u64 {
    let id = slot.load(Ordering::Relaxed);
    if id != 0 {
        return id;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(raced) => raced,
    }
}

/// Record ordering edges from every lock the thread holds to the lock it
/// is about to block on. Called *before* the acquisition so the edge is
/// witnessed even on a run where the acquisition would deadlock.
#[track_caller]
pub(crate) fn before_blocking(id: u64, mode: Mode) {
    let site = Site {
        loc: Location::caller(),
        mode,
    };
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        for (held_id, held_site) in held.iter() {
            if *held_id != id {
                if let std::collections::hash_map::Entry::Vacant(e) = g.edges.entry((*held_id, id)) {
                    e.insert((*held_site, site));
                    dump_line(
                        "edges",
                        &format!(
                            "{}\t{}\t{}\t{}\t{}\t{}",
                            held_site.loc.file(),
                            held_site.loc.line(),
                            held_site.mode.label(),
                            site.loc.file(),
                            site.loc.line(),
                            site.mode.label()
                        ),
                    );
                }
            }
        }
    });
}

/// Token holding a lock's membership in the per-thread held set; dropped
/// by the guard wrapper when the lock is released. When hold-time
/// profiling is live it also carries the acquisition instant and the
/// site's stats slot, so the drop records the hold duration.
#[derive(Debug)]
pub struct HeldToken {
    id: u64,
    since: Option<Instant>,
    stats: Option<&'static SiteStats>,
}

impl std::fmt::Debug for SiteStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SiteStats({}:{})", self.file, self.line)
    }
}

/// Push the acquired lock onto the thread's held set.
#[track_caller]
pub(crate) fn acquired(id: u64, mode: Mode) -> HeldToken {
    let loc = Location::caller();
    let site = Site { loc, mode };
    HELD.with(|held| held.borrow_mut().push((id, site)));
    let (since, stats) = if hold_enabled() {
        (Some(Instant::now()), Some(site_stats(loc, mode)))
    } else {
        (None, None)
    };
    HeldToken { id, since, stats }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        if let (Some(since), Some(stats)) = (self.since, self.stats) {
            let ns = u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stats.record_hold(ns);
        }
        // Guards can be dropped out of acquisition order; remove the most
        // recent entry for this id rather than assuming LIFO.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|(id, _)| *id == self.id) {
                held.remove(pos);
            }
        });
    }
}

/// Clear all witnessed edges (lock ids are preserved). Tests use this to
/// scope a check to one workload.
pub fn lock_order_reset() {
    graph().lock().unwrap_or_else(PoisonError::into_inner).edges.clear();
}

/// Snapshot the lock-order graph and run cycle detection over it.
pub fn lock_order_report() -> LockOrderReport {
    let edges: Vec<((u64, u64), (Site, Site))> = {
        let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.edges.iter().map(|(k, v)| (*k, *v)).collect()
    };
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut nodes: HashSet<u64> = HashSet::new();
    let mut site_of: HashMap<(u64, u64), (Site, Site)> = HashMap::new();
    for ((from, to), sites) in &edges {
        adj.entry(*from).or_default().push(*to);
        nodes.insert(*from);
        nodes.insert(*to);
        site_of.insert((*from, *to), *sites);
    }

    let cycles = sccs(&nodes, &adj)
        .into_iter()
        .filter(|scc| scc.len() > 1)
        .filter_map(|scc| representative_cycle(&scc, &adj, &site_of))
        .collect();

    LockOrderReport {
        locks: nodes.len(),
        edges: edges
            .iter()
            .map(|((from, to), (h, a))| LockEdge {
                from: *from,
                to: *to,
                held_at: h.render(),
                acquired_at: a.render(),
            })
            .collect(),
        cycles,
    }
}

/// Tarjan's strongly-connected-components algorithm (iterative).
fn sccs(nodes: &HashSet<u64>, adj: &HashMap<u64, Vec<u64>>) -> Vec<Vec<u64>> {
    struct State {
        index: HashMap<u64, usize>,
        lowlink: HashMap<u64, usize>,
        on_stack: HashSet<u64>,
        stack: Vec<u64>,
        next_index: usize,
        out: Vec<Vec<u64>>,
    }
    let mut st = State {
        index: HashMap::new(),
        lowlink: HashMap::new(),
        on_stack: HashSet::new(),
        stack: Vec::new(),
        next_index: 0,
        out: Vec::new(),
    };
    let empty: Vec<u64> = Vec::new();
    let mut ordered: Vec<u64> = nodes.iter().copied().collect();
    ordered.sort_unstable();
    for &root in &ordered {
        if st.index.contains_key(&root) {
            continue;
        }
        // Explicit DFS stack: (node, next neighbor offset).
        let mut dfs: Vec<(u64, usize)> = vec![(root, 0)];
        st.index.insert(root, st.next_index);
        st.lowlink.insert(root, st.next_index);
        st.next_index += 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        while let Some(&mut (v, ref mut ni)) = dfs.last_mut() {
            let neighbors = adj.get(&v).unwrap_or(&empty);
            if *ni < neighbors.len() {
                let w = neighbors[*ni];
                *ni += 1;
                if !st.index.contains_key(&w) {
                    st.index.insert(w, st.next_index);
                    st.lowlink.insert(w, st.next_index);
                    st.next_index += 1;
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    dfs.push((w, 0));
                } else if st.on_stack.contains(&w) {
                    let wl = st.index[&w];
                    let vl = st.lowlink[&v];
                    st.lowlink.insert(v, vl.min(wl));
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let vl = st.lowlink[&v];
                    let pl = st.lowlink[&parent];
                    st.lowlink.insert(parent, pl.min(vl));
                }
                if st.lowlink[&v] == st.index[&v] {
                    let mut comp = Vec::new();
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(&w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    st.out.push(comp);
                }
            }
        }
    }
    st.out
}

/// Materialize one concrete cycle inside a strongly connected component:
/// from the smallest node, BFS within the component back to itself.
fn representative_cycle(
    scc: &[u64],
    adj: &HashMap<u64, Vec<u64>>,
    site_of: &HashMap<(u64, u64), (Site, Site)>,
) -> Option<LockCycle> {
    let members: HashSet<u64> = scc.iter().copied().collect();
    let start = *scc.iter().min()?;
    // BFS from start, staying inside the SCC, until an edge returns to it.
    let mut prev: HashMap<u64, u64> = HashMap::new();
    let mut queue = VecDeque::from([start]);
    let empty: Vec<u64> = Vec::new();
    while let Some(v) = queue.pop_front() {
        for &w in adj.get(&v).unwrap_or(&empty) {
            if !members.contains(&w) {
                continue;
            }
            if w == start {
                // Reconstruct start → … → v → start.
                let mut path = vec![v];
                let mut cur = v;
                while cur != start {
                    cur = prev[&cur];
                    path.push(cur);
                }
                path.reverse();
                let mut edges = Vec::with_capacity(path.len());
                for i in 0..path.len() {
                    let from = path[i];
                    let to = path[(i + 1) % path.len()];
                    let (h, a) = site_of.get(&(from, to))?;
                    edges.push(LockEdge {
                        from,
                        to,
                        held_at: h.render(),
                        acquired_at: a.render(),
                    });
                }
                return Some(LockCycle { lock_ids: path, edges });
            }
            if !prev.contains_key(&w) && w != start {
                prev.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::{lock_order_report, Mutex};

    #[test]
    fn ab_ba_order_is_reported_as_cycle() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        {
            let _ga = a.lock(); // site A1
            let _gb = b.lock(); // site A2: edge a → b
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // edge b → a: closes the cycle
        }
        let report = lock_order_report();
        assert!(
            !report.cycles.is_empty(),
            "AB/BA order must be detected:\n{}",
            report.render()
        );
        let rendered = report.render();
        assert!(rendered.contains("lockcheck.rs"), "sites must be named: {rendered}");
    }
}
