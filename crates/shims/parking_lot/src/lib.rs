//! Offline shim for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's non-poisoning API: `lock()`,
//! `read()` and `write()` return guards directly, recovering the inner data
//! if a holder panicked (parking_lot has no poisoning at all; swallowing the
//! poison flag reproduces that behavior).

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
