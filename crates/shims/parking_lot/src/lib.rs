//! Offline shim for `parking_lot`.
//!
//! Wraps the std locks behind parking_lot's non-poisoning API: `lock()`,
//! `read()` and `write()` return guards directly, recovering the inner data
//! if a holder panicked (parking_lot has no poisoning at all; swallowing the
//! poison flag reproduces that behavior).
//!
//! # Lock-order checking (`--features lockcheck`)
//!
//! Because every lock in the workspace comes through this shim, it is the
//! natural place to *instrument* locking. With the `lockcheck` feature
//! enabled, every blocking acquisition records, per thread, the set of locks
//! already held and adds **order edges** `held → acquired` (tagged with the
//! `file:line` of both acquisition sites) into a process-global graph. A
//! cycle in that graph is a *potential deadlock*: two code paths that take
//! the same locks in opposite orders will produce the cycle from a single,
//! non-deadlocking run — no hang required. [`lock_order_report`] runs the
//! cycle detection and returns the witnessed sites.
//!
//! Successful `try_lock`/`try_read`/`try_write` acquisitions join the
//! per-thread held set (so later blocking acquisitions record edges from
//! them) but do not themselves add edges: a failed try cannot block, so
//! try-and-backoff deadlock-avoidance patterns are not false positives.
//!
//! Without the feature the shim compiles to the exact std-backed locks it
//! always was — guards are type aliases, zero added cost.

use std::sync::PoisonError;

#[cfg(feature = "lockcheck")]
pub mod lockcheck;

#[cfg(feature = "lockcheck")]
pub use lockcheck::{
    blocking_op, blocking_report, blocking_reset, hold_time_report, lock_order_report, lock_order_reset,
    BlockingViolation, LockCycle, LockEdge, LockOrderReport, SiteHold,
};

#[cfg(feature = "lockcheck")]
use std::sync::atomic::AtomicU64;

/// Guard type returned by [`Mutex::lock`].
#[cfg(not(feature = "lockcheck"))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
#[cfg(not(feature = "lockcheck"))]
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
#[cfg(not(feature = "lockcheck"))]
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

macro_rules! tracking_guard {
    ($name:ident, $inner:ident) => {
        /// Guard that releases its lockcheck held-set entry on drop.
        #[cfg(feature = "lockcheck")]
        pub struct $name<'a, T: ?Sized> {
            // Held only for its Drop impl, which pops the lockcheck held set.
            #[allow(dead_code)]
            token: lockcheck::HeldToken,
            inner: std::sync::$inner<'a, T>,
        }

        #[cfg(feature = "lockcheck")]
        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        #[cfg(feature = "lockcheck")]
        impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        #[cfg(feature = "lockcheck")]
        impl<T: ?Sized + std::fmt::Display> std::fmt::Display for $name<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

tracking_guard!(MutexGuard, MutexGuard);
tracking_guard!(RwLockReadGuard, RwLockReadGuard);
tracking_guard!(RwLockWriteGuard, RwLockWriteGuard);

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    lc_id: AtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "lockcheck")]
            lc_id: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    #[cfg(not(feature = "lockcheck"))]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock, blocking until available (lockcheck-instrumented).
    #[cfg(feature = "lockcheck")]
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = lockcheck::lock_id(&self.lc_id);
        lockcheck::before_blocking(id, lockcheck::Mode::Lock);
        // Probe first so contended acquisitions are counted per site.
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                lockcheck::contended(lockcheck::Mode::Lock);
                self.inner.lock().unwrap_or_else(PoisonError::into_inner)
            }
        };
        MutexGuard {
            token: lockcheck::acquired(id, lockcheck::Mode::Lock),
            inner,
        }
    }

    /// Try to acquire the lock without blocking.
    #[cfg(not(feature = "lockcheck"))]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire the lock without blocking (lockcheck-instrumented).
    #[cfg(feature = "lockcheck")]
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let id = lockcheck::lock_id(&self.lc_id);
        Some(MutexGuard {
            token: lockcheck::acquired(id, lockcheck::Mode::Lock),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    lc_id: AtomicU64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "lockcheck")]
            lc_id: AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    #[cfg(not(feature = "lockcheck"))]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire a shared read guard (lockcheck-instrumented).
    #[cfg(feature = "lockcheck")]
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let id = lockcheck::lock_id(&self.lc_id);
        lockcheck::before_blocking(id, lockcheck::Mode::Read);
        // Probe first so contended acquisitions are counted per site.
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                lockcheck::contended(lockcheck::Mode::Read);
                self.inner.read().unwrap_or_else(PoisonError::into_inner)
            }
        };
        RwLockReadGuard {
            token: lockcheck::acquired(id, lockcheck::Mode::Read),
            inner,
        }
    }

    /// Acquire an exclusive write guard.
    #[cfg(not(feature = "lockcheck"))]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard (lockcheck-instrumented).
    #[cfg(feature = "lockcheck")]
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let id = lockcheck::lock_id(&self.lc_id);
        lockcheck::before_blocking(id, lockcheck::Mode::Write);
        // Probe first so contended acquisitions are counted per site.
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                lockcheck::contended(lockcheck::Mode::Write);
                self.inner.write().unwrap_or_else(PoisonError::into_inner)
            }
        };
        RwLockWriteGuard {
            token: lockcheck::acquired(id, lockcheck::Mode::Write),
            inner,
        }
    }

    /// Try to acquire a read guard without blocking.
    #[cfg(not(feature = "lockcheck"))]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a read guard without blocking (lockcheck-instrumented).
    #[cfg(feature = "lockcheck")]
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let id = lockcheck::lock_id(&self.lc_id);
        Some(RwLockReadGuard {
            token: lockcheck::acquired(id, lockcheck::Mode::Read),
            inner,
        })
    }

    /// Try to acquire a write guard without blocking.
    #[cfg(not(feature = "lockcheck"))]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking (lockcheck-instrumented).
    #[cfg(feature = "lockcheck")]
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let id = lockcheck::lock_id(&self.lc_id);
        Some(RwLockWriteGuard {
            token: lockcheck::acquired(id, lockcheck::Mode::Write),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_locks() {
        let m = Mutex::new(1);
        {
            let g = m.try_lock();
            assert!(g.is_some());
        }
        let l = RwLock::new(2);
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
    }
}
