/root/repo/crates/shims/parking_lot/target/debug/libparking_lot.rlib: /root/repo/crates/shims/parking_lot/src/lib.rs /root/repo/crates/shims/parking_lot/src/lockcheck.rs
