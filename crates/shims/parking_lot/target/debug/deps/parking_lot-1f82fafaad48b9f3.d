/root/repo/crates/shims/parking_lot/target/debug/deps/parking_lot-1f82fafaad48b9f3.d: src/lib.rs src/lockcheck.rs

/root/repo/crates/shims/parking_lot/target/debug/deps/libparking_lot-1f82fafaad48b9f3.rlib: src/lib.rs src/lockcheck.rs

/root/repo/crates/shims/parking_lot/target/debug/deps/libparking_lot-1f82fafaad48b9f3.rmeta: src/lib.rs src/lockcheck.rs

src/lib.rs:
src/lockcheck.rs:
