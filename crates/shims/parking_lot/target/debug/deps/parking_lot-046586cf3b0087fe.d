/root/repo/crates/shims/parking_lot/target/debug/deps/parking_lot-046586cf3b0087fe.d: src/lib.rs src/lockcheck.rs

/root/repo/crates/shims/parking_lot/target/debug/deps/parking_lot-046586cf3b0087fe: src/lib.rs src/lockcheck.rs

src/lib.rs:
src/lockcheck.rs:
