//! Offline shim for `serde_json`.
//!
//! Re-exports the value model from the `serde` shim and adds the pieces the
//! real crate provides on top: a JSON text parser, compact and pretty
//! printers, the `json!` macro, and the `to_*`/`from_*` conversion entry
//! points used across this workspace.

use std::fmt;

pub use serde::value::{Map, Number, Value};

/// Error raised by parsing or conversion.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------ conversions

/// Serialize any `Serialize` value into a [`Value`] tree.
///
/// Takes the value by value, as serde_json does; pass a reference for
/// borrowed data (`&T: Serialize` holds whenever `T: Serialize`).
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_json(&value).map_err(Error::from)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(write_compact(&value.to_json()))
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_json(), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parse a typed value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    T::from_json(&v).map_err(Error::from)
}

/// Parse a typed value from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------- printer

use serde::value::write_escaped;

fn write_compact(v: &Value) -> String {
    v.to_string()
}

fn write_pretty(v: &Value, depth: usize, out: &mut String) {
    const INDENT: &str = "  ";
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&INDENT.repeat(depth + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&INDENT.repeat(depth));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character {:?} at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at offset {}, got {:?}",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut m = Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error::msg(format!("expected object key at offset {}", self.pos)));
            }
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            m.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at offset {}, got {:?}",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).ok_or_else(|| Error::msg("invalid surrogate pair"))?);
                                } else {
                                    return Err(Error::msg("lone surrogate"));
                                }
                            } else {
                                out.push(char::from_u32(cp).ok_or_else(|| Error::msg("invalid \\u escape"))?);
                            }
                        }
                        other => return Err(Error::msg(format!("invalid escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::msg("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::msg("invalid \\u escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

// ------------------------------------------------------------------ json!

/// Build a [`Value`] from JSON-ish syntax, `serde_json::json!` style.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Implementation detail of [`json!`]: a tt-muncher in the style of the
/// real serde_json macro.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- arrays ----
    (@array [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- objects ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut __object = $crate::Map::new();
            $crate::json_internal!(@object __object () ($($tt)+) ($($tt)+));
            __object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = json!({"a": [1, 2.5, "x"], "b": {"c": null, "d": true}, "n": -4});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn macro_handles_expressions() {
        let id = "cn01".to_string();
        let n = 3u64;
        let v = json!({"Id": id.as_str(), "Count": n + 1, "List": [n, 5]});
        assert_eq!(v["Id"], "cn01");
        assert_eq!(v["Count"], 4);
        assert_eq!(v["List"][1], 5);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!({"s": "a\"b\\c\nd\te\u{1F600}"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses() {
        let v = json!({"x": [1, 2], "y": {}});
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
        let back: Value = from_str("2.0").unwrap();
        assert!(matches!(back, Value::Number(Number::Float(_))));
    }
}
