//! Offline shim for `crossbeam` (the `channel` module only).
//!
//! A bounded MPMC channel built on `Mutex<VecDeque>` + two condvars, with
//! crossbeam's disconnect semantics: `recv` drains remaining messages after
//! all senders drop and only then reports disconnection; `send`/`try_send`
//! fail once all receivers drop.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<Shared<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct Shared<T> {
        items: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Shared {
                items: VecDeque::with_capacity(cap),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: inner.clone() }, Receiver { inner })
    }

    /// The sending half.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// All receivers disconnected; the message comes back.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why `try_send` failed; the message comes back either way.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    /// Channel empty and all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// Why `recv_timeout` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the queue is full.
        #[cfg_attr(feature = "lockcheck", track_caller)]
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            #[cfg(feature = "lockcheck")]
            parking_lot::blocking_op("chan.send");
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(value));
                }
                if shared.items.len() < shared.cap {
                    shared.items.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                shared = self.inner.not_full.wait(shared).unwrap();
            }
        }

        /// Send without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut shared = self.inner.queue.lock().unwrap();
            if shared.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if shared.items.len() >= shared.cap {
                return Err(TrySendError::Full(value));
            }
            shared.items.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// True if the queue is at capacity right now.
        pub fn is_full(&self) -> bool {
            let shared = self.inner.queue.lock().unwrap();
            shared.items.len() >= shared.cap
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().items.len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the queue is empty and senders remain.
        #[cfg_attr(feature = "lockcheck", track_caller)]
        pub fn recv(&self) -> Result<T, RecvError> {
            #[cfg(feature = "lockcheck")]
            parking_lot::blocking_op("chan.recv");
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = shared.items.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared = self.inner.not_empty.wait(shared).unwrap();
            }
        }

        /// Receive, blocking up to `timeout` while the queue is empty and
        /// senders remain.
        #[cfg_attr(feature = "lockcheck", track_caller)]
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            #[cfg(feature = "lockcheck")]
            parking_lot::blocking_op("chan.recv_timeout");
            let deadline = std::time::Instant::now() + timeout;
            let mut shared = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = shared.items.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self.inner.not_empty.wait_timeout(shared, remaining).unwrap();
                shared = guard;
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut shared = self.inner.queue.lock().unwrap();
            if let Some(v) = shared.items.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if shared.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().items.len()
        }

        /// True if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.queue.lock().unwrap();
            shared.senders -= 1;
            if shared.senders == 0 {
                drop(shared);
                // Wake blocked receivers so they observe the disconnect.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut shared = self.inner.queue.lock().unwrap();
            shared.receivers -= 1;
            if shared.receivers == 0 {
                drop(shared);
                // Wake blocked senders so they observe the disconnect.
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert!(tx.is_full());
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.len(), 2);
        }

        #[test]
        fn recv_drains_before_disconnect() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
            assert!(tx.send(6).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded(1);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = bounded(1);
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
