//! Offline shim for `proptest`.
//!
//! A miniature property-testing framework exposing the slice of the
//! proptest API this workspace's tests use: the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros, `Strategy` with `prop_map`,
//! `prop_flat_map` and `prop_recursive`, `any::<T>()`, ranges and
//! `[a-z]{0,6}`-style character-class string patterns as strategies, and
//! the `collection` / `sample` modules. There is no shrinking: a failing
//! case reports its generated input and panics.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::rc::Rc;

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// Build a follow-up strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Grow recursive structures: `self` is the leaf case, `branch` builds
    /// one level on top of the strategy for the level below. `_size` and
    /// `_items` are accepted for API compatibility and ignored.
    fn prop_recursive<S2, F>(self, depth: u32, _size: u32, _items: u32, branch: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let branched = branch(level).boxed();
            let l = leaf.clone();
            level = BoxedStrategy::from_fn(move |rng| {
                if rng.gen::<bool>() {
                    branched.new_value(rng)
                } else {
                    l.new_value(rng)
                }
            });
        }
        level
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> BoxedStrategy<T> {
    /// Wrap a generation closure directly.
    pub fn from_fn(f: impl Fn(&mut StdRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives; built by `prop_oneof!`.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the already-boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].new_value(rng)
    }
}

// ------------------------------------------------------- primitive sources

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen::<u64>()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen::<u32>()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> i32 {
        rng.gen::<u32>() as i32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.gen::<f64>() * 1e9;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        rng.gen::<u64>() as usize
    }
}

/// The full-range strategy for `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn new_value(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u32, u64, usize, i64, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// -------------------------------------------------- pattern string strategy

/// `&str` patterns like `"[a-z]{0,6}"` generate matching strings. Only the
/// `[class]{n}` / `[class]{min,max}` shape (with `a-z` ranges and literal
/// characters in the class) is supported — the shape the tests use.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        let (alphabet, min, max) = parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = if min == max { min } else { rng.gen_range(min..max + 1) };
        (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

// ---------------------------------------------------------------- modules

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A `Vec` of values with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `BTreeMap` with entry count drawn from `len` (key collisions may
    /// shrink it further, as in real proptest).
    pub fn btree_map<K, V>(keys: K, values: V, len: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, len }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        len: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn new_value(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
            use rand::Rng;
            let n = rng.gen_range(self.len.clone());
            (0..n)
                .map(|_| (self.keys.new_value(rng), self.values.new_value(rng)))
                .collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{StdRng, Strategy};

    /// Choose uniformly among the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    /// See [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            use rand::Rng;
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Runner configuration and failure type.
pub mod test_runner {
    /// How many cases `proptest!` runs per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed.
        Fail(String),
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

/// Deterministic per-test seed stream used by the `proptest!` macro.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub fn advance(rng: &mut StdRng) -> u64 {
    rng.next_u64()
}

// ----------------------------------------------------------------- macros

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                let __value = $crate::Strategy::new_value(&__strategy, &mut __rng);
                let __desc = format!("{:?}", __value);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ($($arg,)+) = __value;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match __result {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}\n    input: {}",
                            __case + 1,
                            __config.cases,
                            __msg,
                            __desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_each! { ($config) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 1usize..4), s in "[a-c]{1,3}") {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&b));
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![Just(1u64), 5u64..8], 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|&x| x == 1 || (5..8).contains(&x)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![Just(0usize)];
        let nested = leaf.prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(|v: Vec<usize>| v.len())
        });
        let mut rng = crate::case_rng("recursive", 0);
        for _ in 0..50 {
            let _ = nested.new_value(&mut rng);
        }
    }
}
