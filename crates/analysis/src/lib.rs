//! # ofmf-analysis
//!
//! `ofmf-lint`: a dependency-free static-analysis pass that machine-checks
//! the repo invariants the OFMF's concurrency and reliability work relies
//! on. See [`rules`] for the rule set and the README's "Static analysis &
//! concurrency checking" section for the operational story.
//!
//! The library surface exists so the fixture tests can lint snippets
//! under controlled virtual paths; the binary walks the real workspace:
//!
//! ```text
//! cargo run -p ofmf-analysis            # lint the workspace, exit 1 on findings
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lockgraph;
pub mod rules;
pub mod scan;

use scan::FileScan;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A whole-workspace lint run, fed file by file.
#[derive(Default)]
pub struct Analysis {
    files: Vec<(String, FileScan)>,
    readme_refs: Vec<(String, usize, String)>,
}

impl Analysis {
    /// Empty analysis.
    pub fn new() -> Analysis {
        Analysis::default()
    }

    /// Add a Rust source file under its repo-relative `path` (the path
    /// decides which rules apply).
    pub fn add_rust_file(&mut self, path: &str, source: &str) {
        self.files.push((path.to_string(), FileScan::new(source)));
    }

    /// Add the README; its backticked `ofmf.…` ids become references the
    /// definitions must cover.
    pub fn add_readme(&mut self, path: &str, content: &str) {
        rules::collect_readme_refs(path, content, &mut self.readme_refs);
    }

    /// Run every rule, apply `allow` escapes, and return the surviving
    /// diagnostics sorted by file and line.
    pub fn finish(self) -> Vec<Diagnostic> {
        let mut raw: Vec<Diagnostic> = Vec::new();
        let mut defs = Vec::new();
        let mut span_defs = Vec::new();
        let mut refs = self.readme_refs.clone();
        for (path, scan) in &self.files {
            rules::file_rules(path, scan, &mut raw);
            rules::collect_metric_defs(path, scan, &mut defs);
            rules::collect_span_defs(path, scan, &mut span_defs);
            rules::collect_cli_refs(path, scan, &mut refs);
        }
        rules::obs_name_convention(&defs, &span_defs, &refs, &mut raw);
        rules::span_name_convention(&span_defs, &mut raw);
        lockgraph::lock_rules(&self.files, &mut raw);

        // Apply allow escapes: an allow with a valid rule and reason on the
        // diagnostic's line (or the line above) suppresses it.
        let mut out: Vec<Diagnostic> = Vec::new();
        let mut used = std::collections::HashSet::new(); // (file, allow line)
        for d in raw {
            let allows = self
                .files
                .iter()
                .find(|(p, _)| *p == d.file)
                .map(|(_, s)| &s.allows[..])
                .unwrap_or(&[]);
            let suppressed = allows.iter().any(|a| {
                let applies = a.line == d.line || a.line + 1 == d.line;
                let valid = a.problem.is_none() && a.rule == d.rule;
                if applies && valid {
                    used.insert((d.file.clone(), a.line));
                    true
                } else {
                    false
                }
            });
            if !suppressed {
                out.push(d);
            }
        }
        // Directive hygiene: malformed, unknown-rule, or unused escapes are
        // themselves diagnostics — escapes must stay justified and live.
        for (path, scan) in &self.files {
            for a in &scan.allows {
                if let Some(problem) = &a.problem {
                    out.push(Diagnostic {
                        file: path.clone(),
                        line: a.line,
                        rule: "bad-allow",
                        message: problem.clone(),
                    });
                } else if !rules::RULES.contains(&a.rule.as_str()) {
                    out.push(Diagnostic {
                        file: path.clone(),
                        line: a.line,
                        rule: "bad-allow",
                        message: format!("unknown rule \"{}\" in allow escape", a.rule),
                    });
                } else if !used.contains(&(path.clone(), a.line)) {
                    out.push(Diagnostic {
                        file: path.clone(),
                        line: a.line,
                        rule: "unused-allow",
                        message: format!("allow({}) suppresses nothing; remove it", a.rule),
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

/// Lint the workspace rooted at `root`: every `src/` file of the umbrella
/// crate and of `crates/*` (the shims are vendored API stand-ins, not OFMF
/// code), plus the README's metric references.
///
/// Returns `(diagnostics, files_scanned)`.
pub fn run_repo(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let mut analysis = Analysis::new();
    let mut sources: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut sources)?;
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() && path.file_name().map(|n| n != "shims").unwrap_or(false) {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut sources)?;
    }
    sources.sort();
    let count = sources.len();
    for path in sources {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        analysis.add_rust_file(&rel, &text);
    }
    let readme = root.join("README.md");
    if readme.is_file() {
        let text = std::fs::read_to_string(&readme).map_err(|e| format!("{}: {e}", readme.display()))?;
        analysis.add_readme("README.md", &text);
    }
    Ok((analysis.finish(), count))
}

/// Render diagnostics as a JSON array (machine-readable `--json` output;
/// the GitHub Actions problem matcher consumes one object per finding).
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// lock audit: static graph vs runtime-observed graph
// ---------------------------------------------------------------------------

/// The static/dynamic cross-validation verdict.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Static acquisition sites found.
    pub static_sites: usize,
    /// Static site-pair edges.
    pub static_edges: usize,
    /// Distinct runtime edges read from the dump dir (shim-internal sites
    /// excluded).
    pub runtime_edges: usize,
    /// Runtime edges the static graph does not contain: scanner coverage
    /// gaps. CI-fail.
    pub coverage_gaps: Vec<String>,
    /// Static-only key cycles (after `allow(lock-discipline)` exclusions):
    /// latent deadlocks. CI-fail.
    pub latent_cycles: Vec<String>,
    /// Cycles in the runtime-observed graph projected onto lock keys.
    /// CI-fail.
    pub runtime_cycles: Vec<String>,
    /// Runtime blocking-while-locked violations with no allowed static
    /// finding in the same function. CI-fail.
    pub unexcused_blocking: Vec<String>,
    /// Runtime blocking violations matched to an allowed static finding.
    pub excused_blocking: usize,
    /// Site-pair edges excluded by `allow(lock-discipline)` escapes.
    pub suppressed_edges: usize,
}

impl AuditReport {
    /// Does the cross-validation pass?
    pub fn pass(&self) -> bool {
        self.coverage_gaps.is_empty()
            && self.latent_cycles.is_empty()
            && self.runtime_cycles.is_empty()
            && self.unexcused_blocking.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lock-audit: {} static sites, {} static edges ({} suppressed), {} runtime edges\n",
            self.static_sites, self.static_edges, self.suppressed_edges, self.runtime_edges
        ));
        for (title, items) in [
            (
                "coverage gap (runtime edge unknown to the static graph)",
                &self.coverage_gaps,
            ),
            ("latent deadlock (static-only cycle)", &self.latent_cycles),
            ("runtime lock-order cycle", &self.runtime_cycles),
            ("blocking while locked (unexcused at runtime)", &self.unexcused_blocking),
        ] {
            for item in items {
                out.push_str(&format!("FAIL [{title}] {item}\n"));
            }
        }
        if self.excused_blocking > 0 {
            out.push_str(&format!(
                "note: {} runtime blocking violation(s) excused by allowed static findings\n",
                self.excused_blocking
            ));
        }
        out.push_str(if self.pass() {
            "lock-audit: PASS\n"
        } else {
            "lock-audit: FAIL\n"
        });
        out
    }
}

/// Cross-validate the static lock graph against runtime dumps collected by
/// the `lockcheck` shim (`OFMF_LOCKCHECK_DIR`): every runtime edge must be
/// statically predicted, both graphs must be acyclic over lock keys, and
/// every runtime blocking violation must match an allowed static finding.
/// `runtime_dir: None` audits the static graph alone.
pub fn run_lock_audit(root: &Path, runtime_dir: Option<&Path>) -> Result<AuditReport, String> {
    let (files, test_files) = collect_workspace(root)?;
    let model = lockgraph::LockModel::build(&files, &test_files);
    let allows: HashMap<&str, &[scan::Allow]> = files.iter().map(|(p, s)| (p.as_str(), &s.allows[..])).collect();
    let allowed_at = |rule: &str, file: &str, line: usize| -> bool {
        allows.get(file).is_some_and(|list| {
            list.iter()
                .any(|a| a.problem.is_none() && a.rule == rule && (a.line == line || a.line + 1 == line))
        })
    };

    // Edges excluded by allow(lock-discipline) at either endpoint.
    let mut suppressed: HashSet<lockgraph::Edge> = HashSet::new();
    for e in &model.edges {
        let (f, t) = (&model.sites[e.from], &model.sites[e.to]);
        if allowed_at("lock-discipline", &f.file, f.line) || allowed_at("lock-discipline", &t.file, t.line) {
            suppressed.insert(*e);
        }
    }

    let mut report = AuditReport {
        static_sites: model.sites.len(),
        static_edges: model.edges.len(),
        suppressed_edges: suppressed.len(),
        ..AuditReport::default()
    };

    // Static cycles (latent deadlocks) over non-suppressed edges.
    for (keys, backing) in model.key_cycles(&suppressed) {
        let mut lines: Vec<String> = backing
            .iter()
            .map(|e| format!("{} -> {}", model.describe(e.from), model.describe(e.to)))
            .collect();
        lines.sort();
        report
            .latent_cycles
            .push(format!("[{}] via {}", keys.join(" ⇄ "), lines.join("; ")));
    }

    // Runtime dumps.
    let edge_index: HashSet<(usize, usize)> = model.edges.iter().map(|e| (e.from, e.to)).collect();
    let mut runtime_key_edges: BTreeSet<(String, String)> = BTreeSet::new();
    if let Some(dir) = runtime_dir {
        let mut seen_edges: BTreeSet<(String, usize, String, usize)> = BTreeSet::new();
        let mut seen_blocking: BTreeSet<(String, String, usize, String)> = BTreeSet::new();
        let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry.map_err(|e| e.to_string())?.path();
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            if name.starts_with("edges-") {
                for line in text.lines() {
                    let cols: Vec<&str> = line.split('\t').collect();
                    if cols.len() < 6 {
                        continue;
                    }
                    let (ff, fl, tf, tl) = (
                        cols[0].to_string(),
                        cols[1].parse::<usize>().unwrap_or(0),
                        cols[3].to_string(),
                        cols[4].parse::<usize>().unwrap_or(0),
                    );
                    if ff.starts_with("crates/shims/") || tf.starts_with("crates/shims/") {
                        continue; // the measurement layer is not workspace code
                    }
                    seen_edges.insert((ff, fl, tf, tl));
                }
            } else if name.starts_with("blocking-") {
                for line in text.lines() {
                    let cols: Vec<&str> = line.split('\t').collect();
                    if cols.len() < 4 {
                        continue;
                    }
                    seen_blocking.insert((
                        cols[0].to_string(),
                        cols[1].to_string(),
                        cols[2].parse::<usize>().unwrap_or(0),
                        cols[3].to_string(),
                    ));
                }
            }
        }
        report.runtime_edges = seen_edges.len();
        for (ff, fl, tf, tl) in &seen_edges {
            let from = model.site_at(ff, *fl);
            let to = model.site_at(tf, *tl);
            match (from, to) {
                (Some(f), Some(t)) => {
                    if !edge_index.contains(&(f, t)) {
                        report.coverage_gaps.push(format!(
                            "{} -> {} observed at runtime but not statically predicted",
                            model.describe(f),
                            model.describe(t)
                        ));
                    } else if !suppressed.contains(&lockgraph::Edge { from: f, to: t }) {
                        let (fk, tk) = (model.sites[f].key.clone(), model.sites[t].key.clone());
                        if fk != tk {
                            runtime_key_edges.insert((fk, tk));
                        }
                    }
                }
                _ => {
                    let missing = if from.is_none() {
                        format!("{ff}:{fl}")
                    } else {
                        format!("{tf}:{tl}")
                    };
                    report.coverage_gaps.push(format!(
                        "runtime acquisition site {missing} unknown to the static scanner"
                    ));
                }
            }
        }
        // Runtime graph acyclicity over keys.
        let keys: Vec<&str> = {
            let mut k: Vec<&str> = runtime_key_edges
                .iter()
                .flat_map(|(a, b)| [a.as_str(), b.as_str()])
                .collect();
            k.sort_unstable();
            k.dedup();
            k
        };
        let idx: HashMap<&str, usize> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); keys.len()];
        for (a, b) in &runtime_key_edges {
            adj[idx[a.as_str()]].insert(idx[b.as_str()]);
        }
        for scc in lockgraph::tarjan(&adj) {
            if scc.len() >= 2 {
                let mut names: Vec<&str> = scc.iter().map(|&i| keys[i]).collect();
                names.sort_unstable();
                report.runtime_cycles.push(format!("[{}]", names.join(" ⇄ ")));
            }
        }
        // Blocking violations: excused when the enclosing function carries
        // an allowed static no-blocking-while-locked finding.
        for (kind, file, line, held) in &seen_blocking {
            if file.starts_with("crates/shims/") || test_files.contains(file) {
                report.excused_blocking += 1;
                continue;
            }
            let span = model.fn_containing(file, *line);
            let excused = span.is_some_and(|s| {
                model.blocking.iter().any(|b| {
                    b.file == *file
                        && s.start_line <= b.line
                        && b.line <= s.end_line
                        && allowed_at("no-blocking-while-locked", &b.file, b.line)
                })
            });
            if excused {
                report.excused_blocking += 1;
            } else {
                report
                    .unexcused_blocking
                    .push(format!("{kind} at {file}:{line} while holding [{held}]"));
            }
        }
    }
    report.coverage_gaps.sort();
    report.coverage_gaps.dedup();
    Ok(report)
}

/// Scanned workspace: `(relative path, scan)` per file, plus the set of
/// integration-test paths.
type ScannedWorkspace = (Vec<(String, FileScan)>, HashSet<String>);

/// Scan src *and* integration-test dirs: runtime edges come from test
/// targets, so the static graph must model test code too. Returns the
/// scanned files plus the set of integration-test paths.
fn collect_workspace(root: &Path) -> Result<ScannedWorkspace, String> {
    let mut sources: Vec<PathBuf> = Vec::new();
    let mut test_roots: Vec<PathBuf> = vec![root.join("tests")];
    collect_rs(&root.join("src"), &mut sources)?;
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() && path.file_name().map(|n| n != "shims").unwrap_or(false) {
            collect_rs(&path.join("src"), &mut sources)?;
            test_roots.push(path.join("tests"));
        }
    }
    let mut test_files: HashSet<String> = HashSet::new();
    let mut test_sources: Vec<PathBuf> = Vec::new();
    for dir in &test_roots {
        collect_rs(dir, &mut test_sources)?;
    }
    sources.sort();
    test_sources.sort();
    let mut files: Vec<(String, FileScan)> = Vec::new();
    for (is_test, list) in [(false, &sources), (true, &test_sources)] {
        for path in list {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            if is_test {
                test_files.insert(rel.clone());
            }
            files.push((rel, FileScan::new(&text)));
        }
    }
    Ok((files, test_files))
}

/// Debug rendering of the static lock graph the audit builds (sites, keys,
/// and site-pair edges), for `--dump-lock-graph`.
pub fn lock_graph_dump(root: &Path) -> Result<String, String> {
    let (files, test_files) = collect_workspace(root)?;
    let model = lockgraph::LockModel::build(&files, &test_files);
    let mut out = String::new();
    for (i, s) in model.sites.iter().enumerate() {
        out.push_str(&format!("site {i:3}: {}  key={}\n", model.describe(i), s.key));
    }
    out.push_str(&lockgraph::render_edges(&model));
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}
