//! # ofmf-analysis
//!
//! `ofmf-lint`: a dependency-free static-analysis pass that machine-checks
//! the repo invariants the OFMF's concurrency and reliability work relies
//! on. See [`rules`] for the rule set and the README's "Static analysis &
//! concurrency checking" section for the operational story.
//!
//! The library surface exists so the fixture tests can lint snippets
//! under controlled virtual paths; the binary walks the real workspace:
//!
//! ```text
//! cargo run -p ofmf-analysis            # lint the workspace, exit 1 on findings
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod scan;

use scan::FileScan;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A whole-workspace lint run, fed file by file.
#[derive(Default)]
pub struct Analysis {
    files: Vec<(String, FileScan)>,
    readme_refs: Vec<(String, usize, String)>,
}

impl Analysis {
    /// Empty analysis.
    pub fn new() -> Analysis {
        Analysis::default()
    }

    /// Add a Rust source file under its repo-relative `path` (the path
    /// decides which rules apply).
    pub fn add_rust_file(&mut self, path: &str, source: &str) {
        self.files.push((path.to_string(), FileScan::new(source)));
    }

    /// Add the README; its backticked `ofmf.…` ids become references the
    /// definitions must cover.
    pub fn add_readme(&mut self, path: &str, content: &str) {
        rules::collect_readme_refs(path, content, &mut self.readme_refs);
    }

    /// Run every rule, apply `allow` escapes, and return the surviving
    /// diagnostics sorted by file and line.
    pub fn finish(self) -> Vec<Diagnostic> {
        let mut raw: Vec<Diagnostic> = Vec::new();
        let mut defs = Vec::new();
        let mut span_defs = Vec::new();
        let mut refs = self.readme_refs.clone();
        for (path, scan) in &self.files {
            rules::file_rules(path, scan, &mut raw);
            rules::collect_metric_defs(path, scan, &mut defs);
            rules::collect_span_defs(path, scan, &mut span_defs);
            rules::collect_cli_refs(path, scan, &mut refs);
        }
        rules::obs_name_convention(&defs, &span_defs, &refs, &mut raw);
        rules::span_name_convention(&span_defs, &mut raw);

        // Apply allow escapes: an allow with a valid rule and reason on the
        // diagnostic's line (or the line above) suppresses it.
        let mut out: Vec<Diagnostic> = Vec::new();
        let mut used = std::collections::HashSet::new(); // (file, allow line)
        for d in raw {
            let allows = self
                .files
                .iter()
                .find(|(p, _)| *p == d.file)
                .map(|(_, s)| &s.allows[..])
                .unwrap_or(&[]);
            let suppressed = allows.iter().any(|a| {
                let applies = a.line == d.line || a.line + 1 == d.line;
                let valid = a.problem.is_none() && a.rule == d.rule;
                if applies && valid {
                    used.insert((d.file.clone(), a.line));
                    true
                } else {
                    false
                }
            });
            if !suppressed {
                out.push(d);
            }
        }
        // Directive hygiene: malformed, unknown-rule, or unused escapes are
        // themselves diagnostics — escapes must stay justified and live.
        for (path, scan) in &self.files {
            for a in &scan.allows {
                if let Some(problem) = &a.problem {
                    out.push(Diagnostic {
                        file: path.clone(),
                        line: a.line,
                        rule: "bad-allow",
                        message: problem.clone(),
                    });
                } else if !rules::RULES.contains(&a.rule.as_str()) {
                    out.push(Diagnostic {
                        file: path.clone(),
                        line: a.line,
                        rule: "bad-allow",
                        message: format!("unknown rule \"{}\" in allow escape", a.rule),
                    });
                } else if !used.contains(&(path.clone(), a.line)) {
                    out.push(Diagnostic {
                        file: path.clone(),
                        line: a.line,
                        rule: "unused-allow",
                        message: format!("allow({}) suppresses nothing; remove it", a.rule),
                    });
                }
            }
        }
        out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        out
    }
}

/// Lint the workspace rooted at `root`: every `src/` file of the umbrella
/// crate and of `crates/*` (the shims are vendored API stand-ins, not OFMF
/// code), plus the README's metric references.
///
/// Returns `(diagnostics, files_scanned)`.
pub fn run_repo(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let mut analysis = Analysis::new();
    let mut sources: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut sources)?;
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() && path.file_name().map(|n| n != "shims").unwrap_or(false) {
            crate_dirs.push(path);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut sources)?;
    }
    sources.sort();
    let count = sources.len();
    for path in sources {
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        analysis.add_rust_file(&rel, &text);
    }
    let readme = root.join("README.md");
    if readme.is_file() {
        let text = std::fs::read_to_string(&readme).map_err(|e| format!("{}: {e}", readme.display()))?;
        analysis.add_readme("README.md", &text);
    }
    Ok((analysis.finish(), count))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}
