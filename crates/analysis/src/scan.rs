//! Source scanning: comment/string masking, `#[cfg(test)]` region
//! detection and `ofmf-lint: allow(...)` directive parsing.
//!
//! The scanner is deliberately token-free: it walks the source once with a
//! small state machine, replacing comment and string-literal *contents*
//! with spaces (delimiters and line structure are preserved, so every
//! diagnostic keeps its original `line:column`). Rules then run over the
//! masked text, where `.unwrap()` inside a string or a doc example can no
//! longer produce a false positive, while the collected literal table
//! still carries the real string contents for the naming rules.

/// A string literal collected during masking.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Byte offset of the opening quote within the whole masked text.
    pub start: usize,
    /// The literal's (unescaped-enough) content. Escape sequences are kept
    /// verbatim; metric names never contain escapes.
    pub content: String,
}

/// One `// ofmf-lint: allow(<rule>, "<reason>")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// The quoted reason, if present and non-empty.
    pub reason: Option<String>,
    /// Parse problem, if any (missing reason, bad syntax).
    pub problem: Option<String>,
}

/// The scan of one source file.
#[derive(Debug)]
pub struct FileScan {
    /// Masked source: comments and string contents blanked, structure kept.
    pub masked: String,
    /// Per-line masked text (1-based access via `line - 1`).
    pub masked_lines: Vec<String>,
    /// String literals with their positions.
    pub strings: Vec<StrLit>,
    /// `test_lines[i]` is true when line `i + 1` is inside a
    /// `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
    /// Allow directives found in the file.
    pub allows: Vec<Allow>,
    /// Lines carrying a `// ofmf-wal: policy` comment (the fsync-site
    /// justification tag checked by `wal-write-facade`).
    pub policy_tags: Vec<usize>,
}

impl FileScan {
    /// Scan `source`.
    pub fn new(source: &str) -> FileScan {
        let (masked, strings, comments) = mask(source);
        let masked_lines: Vec<String> = masked.split('\n').map(str::to_string).collect();
        let test_lines = test_regions(&masked, masked_lines.len());
        let allows = parse_allows(source, &comments);
        let src_lines: Vec<&str> = source.split('\n').collect();
        let mut policy_tags: Vec<usize> = comments
            .iter()
            .filter(|(line, _)| src_lines.get(line - 1).is_some_and(|l| l.contains("ofmf-wal: policy")))
            .map(|(line, _)| *line)
            .collect();
        policy_tags.dedup();
        FileScan {
            masked,
            masked_lines,
            strings,
            test_lines,
            allows,
            policy_tags,
        }
    }

    /// True when 1-based `line` lies inside a `#[cfg(test)]` region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line.saturating_sub(1)).copied().unwrap_or(false)
    }
}

/// Mask comments and string contents with spaces; returns the masked text,
/// the collected string literals, and `(line, column)` of every real line
/// comment (so directives embedded in doc prose or string literals are not
/// mistaken for live `allow` escapes).
fn mask(source: &str) -> (String, Vec<StrLit>, Vec<(usize, usize)>) {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize; // offset of the current line within `out`
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            out.push(b'\n');
            line += 1;
            line_start = out.len();
            i += 1;
        } else if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            // Line comment: mask to end of line.
            comments.push((line, out.len() - line_start));
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            // Block comment, nested.
            let mut depth = 1usize;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'\n' {
                    out.push(b'\n');
                    line += 1;
                    line_start = out.len();
                    i += 1;
                } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        } else if c == b'"' {
            let (content, next, lines_crossed) = scan_string(bytes, i + 1, 0);
            strings.push(StrLit {
                line,
                start: out.len(),
                content,
            });
            out.push(b'"');
            mask_span(bytes, i + 1, next, &mut out);
            line += lines_crossed;
            if lines_crossed > 0 {
                line_start = out.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
            }
            i = next;
        } else if (c == b'r' || c == b'b') && is_raw_or_byte_string(bytes, i) {
            // r"..", r#".."#, b"..", br".." — find the opening quote.
            let mut j = i;
            while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
                out.push(bytes[j]);
                j += 1;
            }
            let mut hashes = 0usize;
            while j < bytes.len() && bytes[j] == b'#' {
                out.push(b'#');
                hashes += 1;
                j += 1;
            }
            // `bytes[j]` is the opening quote (guaranteed by the guard).
            let raw = source.as_bytes()[i] == b'r' || (bytes[i] == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'r');
            let (content, next, lines_crossed) = if raw {
                scan_raw_string(bytes, j + 1, hashes)
            } else {
                scan_string(bytes, j + 1, 0)
            };
            strings.push(StrLit {
                line,
                start: out.len(),
                content,
            });
            out.push(b'"');
            mask_span(bytes, j + 1, next, &mut out);
            line += lines_crossed;
            if lines_crossed > 0 {
                line_start = out.iter().rposition(|&b| b == b'\n').map(|p| p + 1).unwrap_or(0);
            }
            i = next;
        } else if c == b'\'' {
            // Char literal vs lifetime.
            if let Some(next) = char_literal_end(bytes, i) {
                out.push(b'\'');
                mask_span(bytes, i + 1, next, &mut out);
                i = next;
            } else {
                out.push(b'\'');
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    (String::from_utf8_lossy(&out).into_owned(), strings, comments)
}

/// Copy the span `[from, to)` into `out` as spaces (newlines preserved),
/// keeping a closing quote if the span ends with one.
fn mask_span(bytes: &[u8], from: usize, to: usize, out: &mut Vec<u8>) {
    for (k, &b) in bytes.iter().enumerate().take(to).skip(from) {
        if b == b'\n' {
            out.push(b'\n');
        } else if b == b'"' && k + 1 == to {
            out.push(b'"');
        } else if k + 1 == to && b == b'#' {
            out.push(b'#');
        } else {
            out.push(b' ');
        }
    }
}

/// Scan an escaped string from just past the opening quote; returns
/// `(content, index past closing quote, newlines crossed)`.
fn scan_string(bytes: &[u8], mut i: usize, _hashes: usize) -> (String, usize, usize) {
    let start = i;
    let mut lines = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                let content = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                return (content, i + 1, lines);
            }
            b'\n' => {
                lines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (
        String::from_utf8_lossy(&bytes[start..]).into_owned(),
        bytes.len(),
        lines,
    )
}

/// Scan a raw string (`hashes` trailing `#`s close it).
fn scan_raw_string(bytes: &[u8], mut i: usize, hashes: usize) -> (String, usize, usize) {
    let start = i;
    let mut lines = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if i + 1 + k >= bytes.len() || bytes[i + 1 + k] != b'#' {
                    ok = false;
                    break;
                }
            }
            if ok {
                let content = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                return (content, i + 1 + hashes, lines);
            }
        }
        if bytes[i] == b'\n' {
            lines += 1;
        }
        i += 1;
    }
    (
        String::from_utf8_lossy(&bytes[start..]).into_owned(),
        bytes.len(),
        lines,
    )
}

/// Does `bytes[i..]` start a raw/byte string literal (`r"`, `r#`, `b"`,
/// `br"`, `br#`)? Guards against identifiers ending in `r`/`b` by the
/// caller checking the *preceding* character — here we only check shape.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // Reject when part of an identifier, e.g. `for`, `attr"` never occurs.
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_ascii_alphanumeric() || p == b'_' {
            return false;
        }
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'r' {
        j += 1;
    }
    if j == i {
        return false;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"' && j > i
}

/// If `bytes[i] == '\''` begins a char literal, return the index just past
/// its closing quote; `None` when it is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escape: skip the backslash and the escape body up to the quote.
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return if j < bytes.len() && bytes[j] == b'\'' {
            Some(j + 1)
        } else {
            None
        };
    }
    // Multi-byte UTF-8 chars: advance one char.
    let width = utf8_width(bytes[j]);
    j += width;
    if j < bytes.len() && bytes[j] == b'\'' {
        Some(j + 1)
    } else {
        None
    }
}

fn utf8_width(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

/// Mark every line belonging to a `#[cfg(test)]` item.
fn test_regions(masked: &str, n_lines: usize) -> Vec<bool> {
    let mut flags = vec![false; n_lines];
    let bytes = masked.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = find_from(masked, "#[cfg(test)]", search) {
        search = pos + 1;
        let start_line = line_of(bytes, pos);
        // Skip any further attributes, then find the item's extent.
        let mut i = pos + "#[cfg(test)]".len();
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'#' {
                // Another attribute: skip to its closing bracket.
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // The item runs to the first `;` at depth 0 or the matching `}` of
        // its first `{`.
        let mut depth = 0usize;
        let mut end = bytes.len();
        while i < bytes.len() {
            match bytes[i] {
                b'{' => depth += 1,
                b'}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = i;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let end_line = line_of(bytes, end.min(bytes.len().saturating_sub(1)));
        for l in start_line..=end_line.min(n_lines) {
            if l >= 1 {
                flags[l - 1] = true;
            }
        }
    }
    flags
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..).and_then(|h| h.find(needle)).map(|p| p + from)
}

fn line_of(bytes: &[u8], pos: usize) -> usize {
    1 + bytes.iter().take(pos).filter(|&&b| b == b'\n').count()
}

/// Parse `ofmf-lint: allow(rule, "reason")` directives. Only a directive
/// that *starts* a real line comment counts — the comment positions come
/// from the masking state machine, so directive text quoted in doc prose
/// or string literals is never parsed.
fn parse_allows(source: &str, comments: &[(usize, usize)]) -> Vec<Allow> {
    let mut out = Vec::new();
    let lines: Vec<&str> = source.split('\n').collect();
    for &(line, col) in comments {
        let Some(raw) = lines.get(line - 1) else { continue };
        let Some(comment) = raw.get(col..) else { continue };
        // Strip the comment opener and any doc-comment sigils.
        let text = comment.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("ofmf-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            out.push(Allow {
                line,
                rule: String::new(),
                reason: None,
                problem: Some("directive must be `allow(<rule>, \"<reason>\")`".to_string()),
            });
            continue;
        };
        let Some(close) = args.rfind(')') else {
            out.push(Allow {
                line,
                rule: String::new(),
                reason: None,
                problem: Some("unclosed allow(...) directive".to_string()),
            });
            continue;
        };
        let inner = &args[..close];
        let (rule, reason, problem) = match inner.find(',') {
            Some(comma) => {
                let rule = inner[..comma].trim().to_string();
                let rtext = inner[comma + 1..].trim();
                if rtext.len() >= 2 && rtext.starts_with('"') && rtext.ends_with('"') && rtext.len() > 2 {
                    (rule, Some(rtext[1..rtext.len() - 1].to_string()), None)
                } else {
                    (
                        rule,
                        None,
                        Some("allow escape must carry a non-empty quoted reason".to_string()),
                    )
                }
            }
            None => (
                inner.trim().to_string(),
                None,
                Some("allow escape must carry a non-empty quoted reason".to_string()),
            ),
        };
        out.push(Allow {
            line,
            rule,
            reason,
            problem,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let s = FileScan::new("let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1;\n");
        assert!(!s.masked.contains("unwrap"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].content, "a.unwrap()");
    }

    #[test]
    fn detects_test_mod_extent() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let s = FileScan::new(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn parses_allow_directives() {
        let src =
            "x(); // ofmf-lint: allow(no-panic-path, \"provably in bounds\")\ny(); // ofmf-lint: allow(no-std-sync)\n";
        let s = FileScan::new(src);
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rule, "no-panic-path");
        assert_eq!(s.allows[0].reason.as_deref(), Some("provably in bounds"));
        assert!(s.allows[0].problem.is_none());
        assert!(s.allows[1].problem.is_some());
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let s = FileScan::new("let c = '\\n'; let l: &'static str = \"x\"; let q = 'a';\n");
        // Lifetime survives, char contents masked — most importantly the
        // scan terminates and the string is collected.
        assert_eq!(s.strings.len(), 1);
    }

    #[test]
    fn raw_strings_collected() {
        let s = FileScan::new("let r = r#\"panic!(\"inner\")\"#;\n");
        assert!(!s.masked.contains("panic!"));
        assert_eq!(s.strings.len(), 1);
        assert!(s.strings[0].content.contains("panic!"));
    }
}
