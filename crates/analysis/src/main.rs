//! `ofmf-lint` — deny-by-default repo-invariant linting for the OFMF
//! workspace, plus the static/dynamic lock-graph cross-validation.
//! Exit codes: 0 clean, 1 diagnostics/audit failures, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut lock_audit = false;
    let mut dump_graph = false;
    let mut runtime_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("ofmf-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--lock-audit" => lock_audit = true,
            "--dump-lock-graph" => dump_graph = true,
            "--runtime-dir" => match args.next() {
                Some(dir) => runtime_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ofmf-lint: --runtime-dir needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ofmf-lint [--root <workspace dir>] [--json]\n\
                     ofmf-lint --lock-audit [--runtime-dir <lockcheck dump dir>] [--root <dir>]\n\n\
                     Enforces the OFMF repo invariants (deny-by-default):\n\
                     no-panic-path, no-std-sync, obs-name-convention, atomic-ordering-audit,\n\
                     span-name-convention, wal-write-facade, syscall-facade, lock-discipline,\n\
                     no-blocking-while-locked.\n\
                     Escape hatch: // ofmf-lint: allow(<rule>, \"<reason>\")\n\n\
                     --lock-audit cross-validates the static lock-order graph against the\n\
                     runtime graph dumped by `cargo test --workspace --features lockcheck`\n\
                     with OFMF_LOCKCHECK_DIR set: a runtime edge missing statically is a\n\
                     scanner coverage gap, a static-only cycle is a latent deadlock, and a\n\
                     runtime blocking violation needs an allowed static finding."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ofmf-lint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    if dump_graph {
        return match ofmf_analysis::lock_graph_dump(&root) {
            Ok(dump) => {
                print!("{dump}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ofmf-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    if lock_audit {
        // Fall back to the same env var the shim dumps through, so CI can
        // set it once for both the test run and the audit.
        if runtime_dir.is_none() {
            if let Ok(dir) = std::env::var("OFMF_LOCKCHECK_DIR") {
                runtime_dir = Some(PathBuf::from(dir));
            }
        }
        return match ofmf_analysis::run_lock_audit(&root, runtime_dir.as_deref()) {
            Ok(report) => {
                print!("{}", report.render());
                if report.pass() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("ofmf-lint: {e}");
                ExitCode::from(2)
            }
        };
    }
    match ofmf_analysis::run_repo(&root) {
        Ok((diags, files)) => {
            if json {
                println!("{}", ofmf_analysis::diagnostics_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                println!("ofmf-lint: {files} files scanned, {} diagnostic(s)", diags.len());
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ofmf-lint: {e}");
            ExitCode::from(2)
        }
    }
}
