//! `ofmf-lint` — deny-by-default repo-invariant linting for the OFMF
//! workspace. Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("ofmf-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "ofmf-lint [--root <workspace dir>]\n\n\
                     Enforces the OFMF repo invariants (deny-by-default):\n\
                     no-panic-path, no-std-sync, obs-name-convention, atomic-ordering-audit,\n\
                     span-name-convention, wal-write-facade.\n\
                     Escape hatch: // ofmf-lint: allow(<rule>, \"<reason>\")"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ofmf-lint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    match ofmf_analysis::run_repo(&root) {
        Ok((diags, files)) => {
            for d in &diags {
                println!("{d}");
            }
            println!("ofmf-lint: {files} files scanned, {} diagnostic(s)", diags.len());
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ofmf-lint: {e}");
            ExitCode::from(2)
        }
    }
}
