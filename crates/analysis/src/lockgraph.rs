//! Static lock-order inference: the whole-workspace lock graph.
//!
//! A lightweight intra-function pass over the masked source extracts every
//! shim lock acquisition (`.lock()` / `.read()` / `.write()` and their
//! `try_` forms), tracks how long each guard is statically live (a
//! `let`-bound guard to the end of its block, an `if let`/`while let`
//! scrutinee temporary through the body, a plain temporary to the end of
//! its statement), and records every call made while guards are held. An
//! interprocedural fixpoint then closes the call graph: an edge `A → B`
//! means "a path exists that acquires B while holding A".
//!
//! Three deliberate over-approximations keep the static graph a superset
//! of anything the runtime `lockcheck` shim can witness:
//!
//! * guard scopes extend to the end of their block even when the guard is
//!   dropped early;
//! * a `let`-bound call to a guard-returning function (return type names a
//!   `Guard` or a lifetime-carrying `Span<'…>`) holds everything that
//!   function can acquire until the end of the caller's block;
//! * a closure argument is assumed to run at every callback-invocation
//!   point of the callee (`snapshot_with`-style callbacks run under the
//!   callee's locks).
//!
//! Cycle detection runs over *lock keys*, not sites: a key is the final
//! field/binding segment of the receiver chain scoped by file
//! (`self.shards[i].tree` and `s.tree` in the same file are one key), so
//! an AB/BA inversion split across two functions — which the runtime shim
//! can only see when a single run executes both orders — collapses onto a
//! two-node key cycle the static pass finds from source alone. Same-key
//! self-edges (ascending multi-shard spans) are excluded from SCC and
//! reported as `lock-discipline` findings instead.

use crate::scan::FileScan;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Acquisition mode, matching the shim's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `Mutex::lock`.
    Lock,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl Mode {
    fn as_str(self) -> &'static str {
        match self {
            Mode::Lock => "lock",
            Mode::Read => "read",
            Mode::Write => "write",
        }
    }
}

/// One static lock-acquisition site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the `.lock()`/`.read()`/`.write()` call.
    pub line: usize,
    /// Acquisition mode.
    pub mode: Mode,
    /// Whether this is a `try_*` form (joins held sets, never blocks).
    pub tried: bool,
    /// Lock key: `file#last-receiver-segment`, the cycle-detection node.
    pub key: String,
    /// Reconstructed receiver expression (for reports).
    pub receiver: String,
    /// Inside an iterator-closure whose result carries the guard: the site
    /// may re-acquire its own key (multi-shard spans).
    pub repeated: bool,
    /// Inside `#[cfg(test)]` or an integration-test file.
    pub test: bool,
}

/// A directed site-pair edge: `to` acquired while `from` is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Index into [`LockModel::sites`] of the held acquisition.
    pub from: usize,
    /// Index into [`LockModel::sites`] of the later acquisition.
    pub to: usize,
}

/// A blocking operation statically reachable while a guard is held.
#[derive(Debug, Clone)]
pub struct BlockingSite {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line of the blocking call.
    pub line: usize,
    /// What blocks (pattern label).
    pub what: &'static str,
    /// Site indices held at the call.
    pub held: Vec<usize>,
    /// Inside test code.
    pub test: bool,
}

/// A function's extent, for mapping runtime sites back to their function.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Repo-relative path.
    pub file: String,
    /// Function name.
    pub name: String,
    /// 1-based first line.
    pub start_line: usize,
    /// 1-based last line.
    pub end_line: usize,
}

/// The whole-workspace static lock model.
#[derive(Debug, Default)]
pub struct LockModel {
    /// Every acquisition site.
    pub sites: Vec<Site>,
    /// Deduplicated site-pair edges.
    pub edges: Vec<Edge>,
    /// Blocking-while-locked sites.
    pub blocking: Vec<BlockingSite>,
    /// Function extents.
    pub fns: Vec<FnSpan>,
}

/// Method names that *are* acquisitions, never interprocedural calls.
const ACQ_METHODS: [(&str, Mode, bool); 6] = [
    ("lock", Mode::Lock, false),
    ("read", Mode::Read, false),
    ("write", Mode::Write, false),
    ("try_lock", Mode::Lock, true),
    ("try_read", Mode::Read, true),
    ("try_write", Mode::Write, true),
];

/// Ubiquitous std method names never resolved against workspace functions
/// (resolving `.clone()` to some in-tree `fn clone` would wire the whole
/// graph together through noise).
const CALL_DENYLIST: [&str; 45] = [
    "push",
    "pop",
    "drop",
    "clone",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "iter",
    "into_iter",
    "next",
    "collect",
    "map",
    "filter",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok",
    "err",
    "as_ref",
    "as_deref",
    "as_str",
    "as_bytes",
    "split",
    "trim",
    "parse",
    "extend",
    "sort",
    "sort_by",
    "cmp",
    "eq",
    "hash",
    "min",
    "max",
    // `use`-imported std/shim free functions and asm! operand keywords that
    // read as bare calls: none dispatch to stored closures.
    "catch_unwind",
    "bounded",
    "unbounded",
    "out",
    "inout",
    "lateout",
    "inlateout",
    "options",
];

/// Method names too common to resolve across files (almost every `.len()`
/// is `Vec::len`), but that in-tree containers do implement over a lock
/// (`StripedRecorder::len` sums `stripe.lock().len()`): resolved against
/// same-file definitions only.
const COMMON_SAME_FILE: [&str; 6] = ["len", "is_empty", "get", "insert", "remove", "contains"];

/// Qualifier path segments that mark a std/external call (`File::create`,
/// `Vec::new`, …) — never resolved in-workspace.
const QUAL_DENYLIST: [&str; 20] = [
    "File",
    "OpenOptions",
    "Vec",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "Instant",
    "Duration",
    "PathBuf",
    "Path",
    "Arc",
    "Box",
    "Ordering",
    "AtomicU64",
    "AtomicBool",
    "std",
    "thread",
];

/// Blocking-call patterns over masked source. Longest-match-first where
/// prefixes overlap.
const BLOCKING_PATTERNS: [(&str, &str); 19] = [
    (".write_all(", "file write"),
    (".sync_all(", "fsync"),
    (".sync_data(", "fsync"),
    ("File::create(", "file create"),
    ("File::open(", "file open"),
    ("OpenOptions::new", "writable file open"),
    ("fs::read_to_string(", "file read"),
    ("fs::read(", "file read"),
    ("fs::write(", "file write"),
    ("fs::rename(", "file rename"),
    ("fs::remove_file(", "file unlink"),
    (".set_len(", "file truncate"),
    (".wait_ms(", "Clock::wait_ms"),
    ("thread::sleep", "thread sleep"),
    (".join()", "thread join"),
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv"),
    (".send(", "blocking channel send"),
    (".wait(", "blocking wait"),
];

// -------------------------------------------------------------------------
// per-function parse products
// -------------------------------------------------------------------------

#[derive(Debug)]
struct PFn {
    file_idx: usize,
    /// Defined in an integration-test or fixture file: never a resolution
    /// target from another file (production code cannot call into tests).
    test_file: bool,
    /// Self type of the enclosing `impl` block (empty for free functions):
    /// lets `Type::assoc(…)` calls resolve only against that type's fns.
    owner: String,
    name: String,
    params: Vec<String>,
    /// Some parameter is closure-capable (`impl Fn…`, `f: F`, `fn(…)`):
    /// only these fns can be the target of a call with a closure argument,
    /// which keeps iterator adapters (`.find(|x| …)`) from resolving to
    /// same-named workspace methods.
    takes_closure: bool,
    ret_text: String,
    body: (usize, usize), // byte span of `{ … }` in the masked text
    /// Direct acquisitions: (global site idx, pos, scope_end).
    acqs: Vec<(usize, usize, usize)>,
    /// Calls made in the body.
    calls: Vec<PCall>,
    /// Positions where a *parameter* is invoked (callback points), with the
    /// positions of the invocation (held sets resolved later).
    cb_invokes: Vec<usize>,
    /// Blocking-pattern occurrences: (pos, label).
    blocks: Vec<(usize, &'static str)>,
    /// Byte spans of closures escaping through `Box::new(…)` (stored
    /// callbacks like the snapshot provider): targets of indirect calls.
    boxed_spans: Vec<(usize, usize)>,
    /// Locals with a known self type (`let r = FlightRecorder::new();`):
    /// method calls on these resolve against that type's impl blocks only.
    local_types: HashMap<String, String>,
}

#[derive(Debug)]
struct PCall {
    pos: usize,
    callee: String,
    /// Reconstructed receiver chain (`self`, `self.registry`, `w`, …);
    /// empty for bare calls.
    recv: String,
    /// `.name(…)` method-call syntax (vs a bare `name(…)`).
    method: bool,
    /// Argument count (top-level commas + 1; 0 for `()`).
    arity: usize,
    /// `path::name(…)` — has any `::` qualifier (so it cannot be a call
    /// through a local closure variable).
    qualified: bool,
    /// The qualifier's last path segment (`Registry` for
    /// `redfish::Registry::new(…)`); empty for unqualified calls.
    qualifier: String,
    /// The callee is a closure literal `let`-bound in this same body
    /// (`let f = |x| …; f(y)`) — intra-function, never indirect dispatch.
    local_closure: bool,
    qualified_std: bool,
    /// `let`-bound statement (candidate guard-holding call).
    let_bound: bool,
    scope_end: usize,
    /// Byte spans of inline-closure arguments.
    closure_spans: Vec<(usize, usize)>,
}

struct FileCtx<'a> {
    path: &'a str,
    masked: &'a [u8],
    scan: &'a FileScan,
    is_test_file: bool,
    line_of: Vec<usize>, // byte pos → 1-based line
}

impl LockModel {
    /// Build the model from scanned files (`(repo-relative path, scan)`),
    /// where `test_files` marks integration-test files (everything in them
    /// is test code).
    pub fn build(files: &[(String, FileScan)], test_files: &HashSet<String>) -> LockModel {
        let mut model = LockModel::default();
        let mut pfns: Vec<PFn> = Vec::new();

        for (file_idx, (path, scan)) in files.iter().enumerate() {
            let ctx = FileCtx {
                path,
                masked: scan.masked.as_bytes(),
                scan,
                is_test_file: test_files.contains(path),
                line_of: line_table(scan.masked.as_bytes()),
            };
            extract_fns(&ctx, file_idx, &mut model, &mut pfns);
        }

        // Name index for call resolution.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in pfns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        // Same-file-first resolution applies only to `self` methods and
        // bare calls: `w.record()` under a journal guard must union every
        // in-tree `record` even when the caller's file defines one, or the
        // cross-crate edge into the WAL vanishes. `COMMON_SAME_FILE` names
        // resolve same-file only (ubiquitous std names with a few in-tree
        // lock-taking implementations).
        let resolve =
            |c: &PCall, file_idx: usize, caller_owner: &str, locals: &HashMap<String, String>| -> Vec<usize> {
                let (callee, recv, arity) = (c.callee.as_str(), c.recv.as_str(), c.arity);
                if CALL_DENYLIST.contains(&callee) || is_acq_method(callee) {
                    return Vec::new();
                }
                let Some(all) = by_name.get(callee) else {
                    return Vec::new();
                };
                // Production code cannot call into test/fixture files.
                let mut cands: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| pfns[i].file_idx == file_idx || !pfns[i].test_file)
                    .collect();
                // A closure argument can only bind to a closure-capable param:
                // `.find(|x| …)` is an iterator adapter, not `Composer::find`.
                if !c.closure_spans.is_empty() {
                    cands.retain(|&i| pfns[i].takes_closure);
                }
                // `Type::assoc(…)`: only that type's impl blocks define it. A
                // lowercase qualifier (`crate::test_guard`, `module::helper`)
                // is a module path: the target is a free function.
                if !c.qualifier.is_empty() {
                    if c.qualifier == "Self" {
                        // `Self::helper(…)`: the caller's own impl block.
                        cands.retain(|&i| pfns[i].owner == caller_owner && pfns[i].file_idx == file_idx);
                    } else if c.qualifier.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                        cands.retain(|&i| pfns[i].owner == c.qualifier);
                    } else {
                        cands.retain(|&i| pfns[i].owner.is_empty());
                    }
                    // UFCS method form passes the receiver positionally, so the
                    // arity filter stays lenient here.
                    if cands.iter().any(|&i| pfns[i].params.len() == arity) {
                        cands.retain(|&i| pfns[i].params.len() == arity);
                    }
                    return cands;
                }
                // Arity disambiguates name collisions (`b.record(input, now)` is
                // not `Wal::record(&self, rec)`). Method-call and bare-call arity
                // both equal the candidate's param count (`params` excludes
                // `self`), so the match is exact.
                cands.retain(|&i| pfns[i].params.len() == arity);
                // Bare-call form (`apply(a, b)`, no receiver): a cross-file
                // `&self` method can never be in scope under that syntax — only
                // free functions and same-file items are candidates.
                if recv.is_empty() {
                    cands.retain(|&i| pfns[i].owner.is_empty() || pfns[i].file_idx == file_idx);
                }
                // `let r = FlightRecorder::new(); r.get(…)`: the receiver's type
                // is known — resolve against that impl block only.
                if let Some(ty) = locals.get(recv) {
                    cands.retain(|&i| pfns[i].owner == *ty);
                    return cands;
                }
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| pfns[i].file_idx == file_idx)
                    .collect();
                if COMMON_SAME_FILE.contains(&callee) {
                    // Container-method names (`get`, `len`, `insert`, …) only
                    // resolve to a same-file workspace fn when called on `self`:
                    // `wire.read().get(id)` is a map lookup behind a guard, not
                    // `Registry::get`.
                    if recv.is_empty() || recv == "self" {
                        return same_file;
                    }
                    return Vec::new();
                }
                if (recv.is_empty() || recv == "self") && !same_file.is_empty() {
                    same_file
                } else {
                    cands
                }
            };
        // A bare unqualified call to a name no workspace `fn` defines is an
        // indirect call through a local (a stored closure invoked as
        // `provider()`).
        let indirect = |c: &PCall| -> bool {
            !c.method
                && !c.qualified
                && !c.local_closure
                && !by_name.contains_key(c.callee.as_str())
                && !CALL_DENYLIST.contains(&c.callee.as_str())
                && !is_acq_method(&c.callee)
        };

        // reach(F): every site F can acquire, directly or transitively.
        let mut reach: Vec<BTreeSet<usize>> = pfns
            .iter()
            .map(|f| f.acqs.iter().map(|&(s, _, _)| s).collect())
            .collect();
        let saturate = |reach: &mut Vec<BTreeSet<usize>>| loop {
            let mut changed = false;
            for i in 0..pfns.len() {
                let mut add: BTreeSet<usize> = BTreeSet::new();
                for c in &pfns[i].calls {
                    if c.qualified_std {
                        continue;
                    }
                    for &g in &resolve(c, pfns[i].file_idx, &pfns[i].owner, &pfns[i].local_types) {
                        for &s in &reach[g] {
                            if !reach[i].contains(&s) {
                                add.insert(s);
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    reach[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        };
        saturate(&mut reach);
        // Indirect calls conservatively reach every boxed-escaping closure;
        // alternate with plain saturation until both are stable (the boxed
        // closures' own reach depends on the call fixpoint and vice versa).
        let boxed_reach_of = |reach: &Vec<BTreeSet<usize>>| -> BTreeSet<usize> {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for f in pfns.iter() {
                for &(a, bnd) in &f.boxed_spans {
                    for &(s, pos, _) in &f.acqs {
                        if a <= pos && pos < bnd {
                            out.insert(s);
                        }
                    }
                    for c in &f.calls {
                        if c.qualified_std || c.pos < a || c.pos >= bnd {
                            continue;
                        }
                        for &g in &resolve(c, f.file_idx, &f.owner, &f.local_types) {
                            out.extend(reach[g].iter().copied());
                        }
                    }
                }
            }
            out
        };
        if std::env::var("OFMF_LOCKGRAPH_DEBUG").is_ok() {
            for f in pfns.iter() {
                for c in &f.calls {
                    if indirect(c) {
                        eprintln!("indirect: {} calls {}()", f.name, c.callee);
                    } else if std::env::var("OFMF_LOCKGRAPH_DEBUG").as_deref() == Ok("calls") {
                        eprintln!(
                            "call: {} -> {}(recv={} arity={} qual={} letb={}) => {} target(s)",
                            f.name,
                            c.callee,
                            c.recv,
                            c.arity,
                            c.qualifier,
                            c.let_bound,
                            resolve(c, f.file_idx, &f.owner, &f.local_types).len()
                        );
                    }
                }
            }
        }
        let mut boxed_reach;
        loop {
            boxed_reach = boxed_reach_of(&reach);
            let mut changed = false;
            for i in 0..pfns.len() {
                if pfns[i].calls.iter().any(&indirect) && !boxed_reach.iter().all(|s| reach[i].contains(s)) {
                    reach[i].extend(boxed_reach.iter().copied());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            saturate(&mut reach);
        }

        // Guard-returning functions: a `let`-bound call to one holds its
        // whole reach set until the caller's scope ends.
        let guard_returning: Vec<bool> = pfns
            .iter()
            .map(|f| f.ret_text.contains("Guard") || f.ret_text.contains("Span<'"))
            .collect();

        // `fn drop` bodies per file: a let-bound call into a file with a
        // `Drop` impl may acquire that impl's locks when the binding dies
        // (a span guard flushing `spans.lock()` from `Drop::drop`).
        let mut drops_by_file: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, f) in pfns.iter().enumerate() {
            if f.name == "drop" {
                drops_by_file.entry(f.file_idx).or_default().push(i);
            }
        }

        // `OFMF_LOCKGRAPH_EXPLAIN="from-substr->to-substr"`: print the
        // function, call, and mechanism behind every matching edge.
        let explain = std::env::var("OFMF_LOCKGRAPH_EXPLAIN").ok();
        let sites_for_expl = &model.sites;
        let note = |from: usize, to: usize, fname: &str, why: &str| {
            if let Some(flt) = &explain {
                if let Some((fa, fb)) = flt.split_once("->") {
                    let sa = format!("{}:{}", sites_for_expl[from].file, sites_for_expl[from].line);
                    let sb = format!("{}:{}", sites_for_expl[to].file, sites_for_expl[to].line);
                    if sa.contains(fa.trim()) && sb.contains(fb.trim()) {
                        eprintln!("explain: {sa} -> {sb} in fn {fname} [{why}]");
                    }
                }
            }
        };
        // Transitive blocking ops per fn, as (defining fn, block index):
        // a call made while holding a guard inherits every blocking op its
        // callee reaches, so the WAL fsync shows up under the registry's
        // stripe lock — reported at the fsync, with the caller's held set.
        let mut breach: Vec<BTreeSet<(usize, usize)>> = pfns
            .iter()
            .enumerate()
            .map(|(i, f)| f.blocks.iter().enumerate().map(|(bi, _)| (i, bi)).collect())
            .collect();
        loop {
            let mut changed = false;
            for i in 0..pfns.len() {
                let mut add: BTreeSet<(usize, usize)> = BTreeSet::new();
                for c in &pfns[i].calls {
                    if c.qualified_std {
                        continue;
                    }
                    for &g in &resolve(c, pfns[i].file_idx, &pfns[i].owner, &pfns[i].local_types) {
                        for &e in &breach[g] {
                            if !breach[i].contains(&e) {
                                add.insert(e);
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    breach[i].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Per function: held intervals (site, start, end), then edges.
        let mut edge_set: HashSet<Edge> = HashSet::new();
        let mut blocking: Vec<BlockingSite> = Vec::new();
        let mut blocking_seen: BTreeSet<(String, usize, &'static str, Vec<usize>)> = BTreeSet::new();
        for (i, f) in pfns.iter().enumerate() {
            let mut intervals: Vec<(usize, usize, usize)> = f.acqs.clone();
            for c in &f.calls {
                if !c.let_bound || c.qualified_std {
                    continue;
                }
                for &g in &resolve(c, f.file_idx, &f.owner, &f.local_types) {
                    if guard_returning[g] {
                        for &s in &reach[g] {
                            intervals.push((s, c.pos, c.scope_end));
                        }
                    }
                }
            }
            let held_at = |pos: usize| -> Vec<usize> {
                let mut h: Vec<usize> = intervals
                    .iter()
                    .filter(|&&(_, s, e)| s < pos && pos < e)
                    .map(|&(site, _, _)| site)
                    .collect();
                h.sort_unstable();
                h.dedup();
                h
            };
            // Acquisition-over-acquisition edges.
            for &(site, pos, _) in &f.acqs {
                for from in held_at(pos) {
                    if from != site {
                        note(from, site, &f.name, "acq-over-acq");
                        edge_set.insert(Edge { from, to: site });
                    }
                }
            }
            // Self-edges for repeated (iterator-span) sites.
            for &(site, _, _) in &f.acqs {
                if model.sites[site].repeated {
                    edge_set.insert(Edge { from: site, to: site });
                }
            }
            // Call edges: everything the callee reaches, acquired under the
            // caller's held set; plus callback closures running under the
            // callee's own locks.
            for c in &f.calls {
                if c.qualified_std {
                    continue;
                }
                let held = held_at(c.pos);
                let targets = resolve(c, f.file_idx, &f.owner, &f.local_types);
                for &g in &targets {
                    for &to in &reach[g] {
                        for &from in &held {
                            if from != to {
                                note(from, to, &f.name, &format!("call {} -> fn {}", c.callee, pfns[g].name));
                                edge_set.insert(Edge { from, to });
                            }
                        }
                    }
                }
                if targets.is_empty() && indirect(c) {
                    for &to in &boxed_reach {
                        for &from in &held {
                            if from != to {
                                note(from, to, &f.name, &format!("indirect {}()", c.callee));
                                edge_set.insert(Edge { from, to });
                            }
                        }
                    }
                }
                // Drop-path edges for let-bound returns.
                if c.let_bound {
                    for &g in &targets {
                        for d in drops_by_file
                            .get(&pfns[g].file_idx)
                            .map(|v| v.as_slice())
                            .unwrap_or(&[])
                        {
                            for &to in &reach[*d] {
                                for &from in &held {
                                    if from != to {
                                        note(from, to, &f.name, &format!("drop-path of let-bound {}", c.callee));
                                        edge_set.insert(Edge { from, to });
                                    }
                                }
                            }
                        }
                    }
                }
                if !c.closure_spans.is_empty() {
                    // What can the closure body acquire?
                    let mut closure_reach: BTreeSet<usize> = BTreeSet::new();
                    for &(s, pos, _) in &f.acqs {
                        if c.closure_spans.iter().any(|&(a, b)| a <= pos && pos < b) {
                            closure_reach.insert(s);
                        }
                    }
                    for inner in &f.calls {
                        if inner.qualified_std || std::ptr::eq(inner, c) {
                            continue;
                        }
                        if c.closure_spans.iter().any(|&(a, b)| a <= inner.pos && inner.pos < b) {
                            for &g in &resolve(inner, f.file_idx, &f.owner, &f.local_types) {
                                closure_reach.extend(reach[g].iter().copied());
                            }
                            if inner.callee != c.callee && indirect(inner) {
                                closure_reach.extend(boxed_reach.iter().copied());
                            }
                        }
                    }
                    if closure_reach.is_empty() {
                        continue;
                    }
                    for &g in &targets {
                        for &inv_pos in &pfns[g].cb_invokes {
                            // Held set of the callee at its callback point:
                            // its own direct intervals.
                            let callee_held: Vec<usize> = pfns[g]
                                .acqs
                                .iter()
                                .filter(|&&(_, s, e)| s < inv_pos && inv_pos < e)
                                .map(|&(site, _, _)| site)
                                .collect();
                            for &from in &callee_held {
                                for &to in &closure_reach {
                                    if from != to {
                                        note(
                                            from,
                                            to,
                                            &f.name,
                                            &format!("closure arg of {} under callee locks", c.callee),
                                        );
                                        edge_set.insert(Edge { from, to });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Blocking calls under held guards.
            for &(pos, what) in &f.blocks {
                let held = held_at(pos);
                if held.is_empty() {
                    continue;
                }
                let (path, scan) = &files[f.file_idx];
                let line = line_at(&ctx_line_table_cache(scan), pos);
                if blocking_seen.insert((path.clone(), line, what, held.clone())) {
                    blocking.push(BlockingSite {
                        file: path.clone(),
                        line,
                        what,
                        held,
                        test: scan.is_test_line(line) || test_files.contains(path),
                    });
                }
            }
            // Interprocedural: a call under a guard surfaces the callee's
            // transitive blocking ops with this caller's held set (the op
            // itself may live in a fn that takes the locked state by
            // parameter and holds nothing directly).
            for c in &f.calls {
                if c.qualified_std {
                    continue;
                }
                let held = held_at(c.pos);
                if held.is_empty() {
                    continue;
                }
                let caller_test = {
                    let (path, scan) = &files[f.file_idx];
                    let line = line_at(&ctx_line_table_cache(scan), c.pos);
                    scan.is_test_line(line) || test_files.contains(path)
                };
                let mut inherited: BTreeSet<(usize, usize)> = BTreeSet::new();
                for &g in &resolve(c, f.file_idx, &f.owner, &f.local_types) {
                    inherited.extend(breach[g].iter().copied());
                }
                for (gf, bi) in inherited {
                    if gf == i {
                        continue;
                    }
                    let (pos, what) = pfns[gf].blocks[bi];
                    let (path, scan) = &files[pfns[gf].file_idx];
                    let line = line_at(&ctx_line_table_cache(scan), pos);
                    if blocking_seen.insert((path.clone(), line, what, held.clone())) {
                        blocking.push(BlockingSite {
                            file: path.clone(),
                            line,
                            what,
                            held: held.clone(),
                            test: caller_test || scan.is_test_line(line) || test_files.contains(path),
                        });
                    }
                }
            }
            let _ = i;
        }

        let mut edges: Vec<Edge> = edge_set.into_iter().collect();
        edges.sort_by_key(|e| (e.from, e.to));
        model.edges = edges;
        model.blocking = blocking;
        model
    }

    /// Key-level cycles via Tarjan SCC, ignoring same-key self-edges and
    /// any edge in `suppressed`. Each cycle is the sorted set of keys plus
    /// the backing site-edges.
    pub fn key_cycles(&self, suppressed: &HashSet<Edge>) -> Vec<(Vec<String>, Vec<Edge>)> {
        let mut keys: Vec<&str> = self.sites.iter().map(|s| s.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        let key_idx: HashMap<&str, usize> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); keys.len()];
        for e in &self.edges {
            if suppressed.contains(e) {
                continue;
            }
            let (a, b) = (
                key_idx[self.sites[e.from].key.as_str()],
                key_idx[self.sites[e.to].key.as_str()],
            );
            if a != b {
                adj[a].insert(b);
            }
        }
        let sccs = tarjan(&adj);
        let mut out = Vec::new();
        for scc in sccs {
            if scc.len() < 2 {
                continue;
            }
            let in_scc: HashSet<usize> = scc.iter().copied().collect();
            let mut cycle_keys: Vec<String> = scc.iter().map(|&i| keys[i].to_string()).collect();
            cycle_keys.sort();
            let backing: Vec<Edge> = self
                .edges
                .iter()
                .filter(|e| {
                    !suppressed.contains(e)
                        && in_scc.contains(&key_idx[self.sites[e.from].key.as_str()])
                        && in_scc.contains(&key_idx[self.sites[e.to].key.as_str()])
                        && self.sites[e.from].key != self.sites[e.to].key
                })
                .copied()
                .collect();
            out.push((cycle_keys, backing));
        }
        out
    }

    /// Site lookup by `(file, line)` (runtime dumps address sites this way).
    pub fn site_at(&self, file: &str, line: usize) -> Option<usize> {
        self.sites.iter().position(|s| s.file == file && s.line == line)
    }

    /// The function containing `(file, line)`, innermost on ties.
    pub fn fn_containing(&self, file: &str, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.file == file && f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Describe a site as `file:line (mode receiver)`.
    pub fn describe(&self, idx: usize) -> String {
        let s = &self.sites[idx];
        format!("{}:{} ({} {})", s.file, s.line, s.mode.as_str(), s.receiver)
    }
}

/// Emit the `lock-discipline` and `no-blocking-while-locked` diagnostics
/// for the lint pass (suppression via `allow` happens in `finish`).
pub(crate) fn lock_rules(files: &[(String, FileScan)], out: &mut Vec<Diagnostic>) {
    let model = LockModel::build(files, &HashSet::new());
    diagnostics_from(&model, out);
}

/// Diagnostics from an already-built model.
pub(crate) fn diagnostics_from(model: &LockModel, out: &mut Vec<Diagnostic>) {
    // Repeated same-key acquisitions (multi-shard spans): intentional only
    // when every such span ascends a single global order — demand a stated
    // reason.
    for s in &model.sites {
        if s.repeated && !s.test {
            out.push(Diagnostic {
                file: s.file.clone(),
                line: s.line,
                rule: "lock-discipline",
                message: format!(
                    "`{}` is re-acquired inside an iterator closure while prior guards of the same key are held; \
                     safe only under a globally consistent (ascending) acquisition order — state it",
                    s.receiver
                ),
            });
        }
    }
    // Static key cycles: one diagnostic per backing site-edge, anchored at
    // the *second* acquisition (the inversion point).
    for (keys, backing) in model.key_cycles(&HashSet::new()) {
        for e in backing {
            out.push(Diagnostic {
                file: model.sites[e.to].file.clone(),
                line: model.sites[e.to].line,
                rule: "lock-discipline",
                message: format!(
                    "acquiring {} while holding {} participates in a potential-deadlock cycle over keys [{}]",
                    model.describe(e.to),
                    model.describe(e.from),
                    keys.join(" ⇄ ")
                ),
            });
        }
    }
    for b in &model.blocking {
        if b.test {
            continue;
        }
        let held: Vec<String> = b.held.iter().map(|&i| model.describe(i)).collect();
        out.push(Diagnostic {
            file: b.file.clone(),
            line: b.line,
            rule: "no-blocking-while-locked",
            message: format!(
                "{} while holding [{}]; move the blocking call out of the lock scope or justify the hold",
                b.what,
                held.join(", ")
            ),
        });
    }
}

// -------------------------------------------------------------------------
// extraction
// -------------------------------------------------------------------------

fn is_acq_method(name: &str) -> bool {
    ACQ_METHODS.iter().any(|&(m, _, _)| m == name)
}

fn line_table(bytes: &[u8]) -> Vec<usize> {
    let mut t = Vec::with_capacity(bytes.len() + 1);
    let mut line = 1usize;
    for &b in bytes {
        t.push(line);
        if b == b'\n' {
            line += 1;
        }
    }
    t.push(line);
    t
}

fn line_at(table: &[usize], pos: usize) -> usize {
    table.get(pos).copied().unwrap_or(1)
}

// The blocking pass needs a line table per file after the borrow of `ctx`
// ended; rebuilding is O(bytes) and files are small.
fn ctx_line_table_cache(scan: &FileScan) -> Vec<usize> {
    line_table(scan.masked.as_bytes())
}

/// Extract every `fn` in the file with its acquisitions, calls, callback
/// invocations and blocking patterns.
/// `impl` blocks in a file: `(body_start, body_end, owner-type name)`.
/// `impl Registry {` and `impl Drop for Span<'_> {` both yield the last
/// path segment of the self type with generics stripped.
fn impl_spans(b: &[u8]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(p) = find_word(b, b"impl", i) {
        i = p + 4;
        // Header up to the body `{` (angle-bracket generics can't contain
        // braces).
        let mut k = p + 4;
        while k < b.len() && b[k] != b'{' && b[k] != b';' {
            k += 1;
        }
        if k >= b.len() || b[k] != b'{' {
            continue;
        }
        let header = String::from_utf8_lossy(&b[p + 4..k]).into_owned();
        let Some(end) = matching(b, k, b'{', b'}') else {
            continue;
        };
        // Self type: after ` for ` when present, else the whole header
        // minus leading `<…>` generic params.
        let ty = match header.find(" for ") {
            Some(f) => &header[f + 5..],
            None => {
                let t = header.trim_start();
                if let Some(rest) = t.strip_prefix('<') {
                    // Skip the generic parameter list.
                    let mut depth = 1i32;
                    let mut idx = 0usize;
                    for (n, ch) in rest.char_indices() {
                        match ch {
                            '<' => depth += 1,
                            '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    idx = n + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    &rest[idx..]
                } else {
                    t
                }
            }
        };
        let ty = ty.trim();
        let ty = ty.split(|c: char| c == '<' || c.is_whitespace()).next().unwrap_or("");
        let name = ty.rsplit("::").next().unwrap_or("").trim().to_string();
        if !name.is_empty() && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            out.push((k, end, name));
        }
    }
    out
}

fn extract_fns(ctx: &FileCtx<'_>, file_idx: usize, model: &mut LockModel, pfns: &mut Vec<PFn>) {
    let b = ctx.masked;
    let impls = impl_spans(b);
    let mut i = 0usize;
    while let Some(p) = find_word(b, b"fn", i) {
        i = p + 2;
        // Name.
        let mut j = p + 2;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue; // `fn` in e.g. `Fn(` bounds (masked strings can't hit)
        }
        let name = String::from_utf8_lossy(&b[name_start..j]).into_owned();
        // Skip an explicit generic list first: `fn for_each<F: FnMut(&A)>`
        // has parens *inside* `<…>` that must not be taken for the param
        // list. `->` inside a bound is an arrow, not a closing angle.
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < b.len() && b[j] == b'<' {
            let mut depth = 0i32;
            while j < b.len() {
                match b[j] {
                    b'<' => depth += 1,
                    b'>' if j > 0 && b[j - 1] == b'-' => {}
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Generics, then params.
        while j < b.len() && b[j] != b'(' && b[j] != b'{' && b[j] != b';' {
            j += 1;
        }
        if j >= b.len() || b[j] != b'(' {
            continue;
        }
        let params_start = j + 1;
        let params_end = match matching(b, j, b'(', b')') {
            Some(e) => e,
            None => continue,
        };
        let params = param_names(&b[params_start..params_end]);
        let takes_closure = params_take_closure(&b[params_start..params_end]);
        // Return type / where-clause text up to the body brace (or `;` for
        // a trait signature without body).
        let mut k = params_end + 1;
        while k < b.len() && b[k] != b'{' && b[k] != b';' {
            k += 1;
        }
        if k >= b.len() || b[k] == b';' {
            continue;
        }
        let ret_text = String::from_utf8_lossy(&b[params_end + 1..k]).into_owned();
        let body_start = k;
        let body_end = match matching(b, body_start, b'{', b'}') {
            Some(e) => e,
            None => continue,
        };
        let start_line = line_at(&ctx.line_of, p);
        let end_line = line_at(&ctx.line_of, body_end);
        model.fns.push(FnSpan {
            file: ctx.path.to_string(),
            name: name.clone(),
            start_line,
            end_line,
        });
        let owner = impls
            .iter()
            .filter(|&&(s, e, _)| s < p && p < e)
            .min_by_key(|&&(s, e, _)| e - s)
            .map(|(_, _, n)| n.clone())
            .unwrap_or_default();
        let mut pfn = PFn {
            file_idx,
            test_file: ctx.is_test_file,
            owner,
            name,
            params,
            takes_closure,
            ret_text,
            body: (body_start, body_end),
            acqs: Vec::new(),
            calls: Vec::new(),
            cb_invokes: Vec::new(),
            blocks: Vec::new(),
            boxed_spans: Vec::new(),
            local_types: HashMap::new(),
        };
        for (pname, ptype) in param_types(&b[params_start..params_end]) {
            pfn.local_types.insert(pname, ptype);
        }
        walk_body(ctx, model, &mut pfn);
        pfns.push(pfn);
        i = body_start + 1; // nested fns are re-found inside; acceptable
    }
}

/// Walk one function body: acquisitions, calls, callbacks, blocking sites.
/// Keywords and binding forms that look like calls to the identifier scan
/// (`let (a, b) = …`, `for (k, v) in …`, asm `in("rdi")`) but aren't.
const KEYWORDS: [&str; 22] = [
    "let", "for", "in", "if", "while", "match", "loop", "return", "break", "continue", "move", "fn", "pub", "unsafe",
    "as", "ref", "mut", "else", "dyn", "await", "yield", "where",
];

/// Names bound to closure literals in `body` (`let f = |x| …;`,
/// `let f = move |x| …;`): calls through them stay intra-function, so
/// they must not be treated as indirect dispatch to boxed callbacks.
fn closure_bound_names(b: &[u8], lo: usize, hi: usize) -> std::collections::HashSet<String> {
    let mut out = std::collections::HashSet::new();
    let text = std::str::from_utf8(&b[lo..hi]).unwrap_or("");
    let mut from = 0usize;
    while let Some(p) = text[from..].find("let ") {
        let mut r = &text[from + p + 4..];
        from += p + 4;
        r = r.trim_start();
        r = r.strip_prefix("mut ").unwrap_or(r).trim_start();
        let name: String = r
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Up to `=` within this statement only.
        let Some(eq) = r.find('=') else { continue };
        if r[..eq].contains(';') {
            continue;
        }
        let rhs = r[eq + 1..].trim_start();
        if rhs.starts_with('|') || rhs.starts_with("move ") || rhs.starts_with("move|") {
            out.insert(name);
        }
    }
    out
}

fn walk_body(ctx: &FileCtx<'_>, model: &mut LockModel, pfn: &mut PFn) {
    let b = ctx.masked;
    let (lo, hi) = pfn.body;
    let closures = closure_spans(b, lo, hi);
    let local_closures = closure_bound_names(b, lo, hi);
    let mut i = lo;
    while i < hi {
        // Attributes: `#[cfg(any(…))]` predicates read as bare calls.
        if b[i] == b'#' {
            let mut a = i + 1;
            while a < hi && b[a].is_ascii_whitespace() {
                a += 1;
            }
            if a < hi && (b[a] == b'[' || (b[a] == b'!' && a + 1 < hi && b[a + 1] == b'[')) {
                let open = if b[a] == b'[' { a } else { a + 1 };
                i = matching(b, open, b'[', b']').map_or(hi, |e| e + 1);
                continue;
            }
        }
        if b[i] == b'.' || (b[i].is_ascii_alphabetic() || b[i] == b'_') {
            // Identifier run.
            let is_method = b[i] == b'.';
            let id_start = if is_method { i + 1 } else { i };
            let mut j = id_start;
            while j < hi && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j == id_start {
                i += 1;
                continue;
            }
            // Skip when this is the middle of a larger identifier.
            if !is_method && id_start > 0 && (b[id_start - 1].is_ascii_alphanumeric() || b[id_start - 1] == b'_') {
                i = j;
                continue;
            }
            let ident = std::str::from_utf8(&b[id_start..j]).unwrap_or("");
            // Keywords (`let (a, b)`, `for (k, v)`) and attribute names
            // (`#[cfg(test)]`) aren't calls.
            if !is_method && (KEYWORDS.contains(&ident) || (id_start > 0 && b[id_start - 1] == b'[')) {
                i = j;
                continue;
            }
            // Call or acquisition? needs `(` next (whitespace allowed).
            let mut k = j;
            while k < hi && (b[k] == b' ' || b[k] == b'\n') {
                k += 1;
            }
            if k >= hi || b[k] != b'(' {
                i = j;
                continue;
            }
            let args_end = matching(b, k, b'(', b')').unwrap_or(hi);
            let empty_args = b[k + 1..args_end.min(hi)].iter().all(|&c| c.is_ascii_whitespace());
            if let Some(&(_, mode, tried)) = ACQ_METHODS
                .iter()
                .find(|&&(m, _, _)| m == ident && is_method && empty_args)
            {
                let dot = id_start - 1;
                let receiver = receiver_chain(b, lo, dot);
                let line = line_at(&ctx.line_of, id_start);
                // Index/call groups don't name the lock: `self.shards[i].tree`
                // keys as `tree`, `self.stripes[h % N]` as `stripes`.
                let flat = strip_groups(&receiver);
                let key_seg = flat
                    .rsplit('.')
                    .next()
                    .unwrap_or(&flat)
                    .trim_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .to_string();
                let key = format!("{}#{}", ctx.path, if key_seg.is_empty() { &flat } else { &key_seg });
                let in_closure = closures.iter().find(|c| c.body.0 <= dot && dot < c.body.1);
                let repeated = in_closure.is_some_and(|c| c.iterator_method && !let_bound_inside(b, c.body.0, dot));
                let scope_end = guard_scope_end(b, lo, hi, dot, args_end, ctx);
                let site_idx = model.sites.len();
                model.sites.push(Site {
                    file: ctx.path.to_string(),
                    line,
                    mode,
                    tried,
                    key,
                    receiver,
                    repeated,
                    test: ctx.is_test_file || ctx.scan.is_test_line(line),
                });
                pfn.acqs.push((site_idx, id_start, scope_end));
                i = k + 1;
                continue;
            }
            // Interprocedural call.
            let qualified = !is_method && id_start >= 2 && b[id_start - 1] == b':' && b[id_start - 2] == b':';
            let qualified_std = qualified && qualifier_is_std(b, lo, id_start - 2);
            let qualifier = if qualified {
                let mut q = id_start - 2;
                while q > lo && (b[q - 1].is_ascii_alphanumeric() || b[q - 1] == b'_') {
                    q -= 1;
                }
                String::from_utf8_lossy(&b[q..id_start - 2]).into_owned()
            } else {
                String::new()
            };
            if pfn.params.iter().any(|p| p == ident) && !is_method {
                pfn.cb_invokes.push(id_start);
            } else if !ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                let scope_end = guard_scope_end(b, lo, hi, id_start, args_end, ctx);
                pfn.calls.push(PCall {
                    pos: id_start,
                    callee: ident.to_string(),
                    recv: if is_method {
                        receiver_chain(b, lo, id_start - 1)
                    } else {
                        String::new()
                    },
                    method: is_method,
                    arity: call_arity(b, k, args_end),
                    qualified,
                    qualifier,
                    local_closure: !is_method && local_closures.contains(ident),
                    qualified_std,
                    let_bound: stmt_is_let(b, lo, id_start),
                    scope_end,
                    // Only closures that are *top-level* arguments of this
                    // call (paren depth 0 relative to its `(`): a closure
                    // nested in a sub-expression argument belongs to the
                    // inner call and runs during argument evaluation, not
                    // under this callee's locks.
                    closure_spans: closures
                        .iter()
                        .filter(|c| {
                            k < c.body.0
                                && c.body.1 <= args_end + 1
                                && b[k + 1..c.body.0].iter().fold(0i32, |d, &ch| match ch {
                                    b'(' | b'[' | b'{' => d + 1,
                                    b')' | b']' | b'}' => d - 1,
                                    _ => d,
                                }) == 0
                        })
                        .map(|c| c.body)
                        .collect(),
                });
                // `let r = FlightRecorder::new();` — remember the local's
                // self type so `r.get(…)` resolves against that impl only.
                // Chained initializers (`…::new().x()`) don't bind the
                // constructed type, so require the call to end the statement.
                if let Some(c) = pfn.calls.last() {
                    if c.let_bound && c.qualifier.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                        let mut q = args_end + 1;
                        while q < hi && (b[q].is_ascii_whitespace() || b[q] == b'?') {
                            q += 1;
                        }
                        if q < hi && b[q] == b';' {
                            if let Some(ls) = let_binding_start(b, lo, id_start) {
                                if let Some(name) = let_bound_name(b, ls) {
                                    pfn.local_types.insert(name, c.qualifier.clone());
                                }
                            }
                        }
                    }
                }
            }
            i = k + 1;
            continue;
        }
        i += 1;
    }
    // Closures escaping through `Box::new(…)`: stored callbacks a later
    // indirect call (`provider()`) may run under arbitrary held locks.
    {
        let text = std::str::from_utf8(&b[lo..hi]).unwrap_or("");
        let mut from = 0usize;
        while let Some(p) = text[from..].find("Box::new(") {
            let open = lo + from + p + "Box::new".len();
            from += p + 1;
            let Some(close) = matching(b, open, b'(', b')') else {
                continue;
            };
            for c in &closures {
                if open < c.body.0 && c.body.1 <= close + 1 {
                    pfn.boxed_spans.push(c.body);
                }
            }
        }
    }
    // Blocking patterns (textual; positions inside the body only).
    let text = std::str::from_utf8(&b[lo..hi]).unwrap_or("");
    let mut claimed: Vec<(usize, usize)> = Vec::new();
    for (pat, label) in BLOCKING_PATTERNS {
        let mut from = 0usize;
        while let Some(p) = text[from..].find(pat) {
            let pos = lo + from + p;
            let args_at = from + p + pat.len();
            from += p + 1;
            if claimed.iter().any(|&(s, e)| pos >= s && pos < e) {
                continue;
            }
            // `.write_all()` with no argument is a workspace lock helper
            // (Registry's all-shard write span), not `io::Write::write_all`.
            if pat == ".write_all(" && text[args_at..].trim_start().starts_with(')') {
                continue;
            }
            claimed.push((pos, pos + pat.len()));
            pfn.blocks.push((pos, label));
        }
    }
}

/// `let`-bound *within* the closure body (the guard does not escape into
/// the closure's result).
fn let_bound_inside(b: &[u8], closure_start: usize, pos: usize) -> bool {
    stmt_is_let(b, closure_start, pos)
}

/// Does the qualifier ending at `colon_pos` (exclusive) belong to a std
/// type/path?
fn qualifier_is_std(b: &[u8], lo: usize, colon_pos: usize) -> bool {
    let mut j = colon_pos;
    while j > lo && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
        j -= 1;
    }
    let qual = std::str::from_utf8(&b[j..colon_pos]).unwrap_or("");
    QUAL_DENYLIST.contains(&qual)
}

/// Reconstructed receiver chain ending at the `.` at `dot`: walks back over
/// `ident`, `[…]`, `(…)` and `.` segments, skipping whitespace so a
/// multi-line builder chain (`self.state\n    .lock()`) still resolves.
/// The result has all whitespace removed.
fn receiver_chain(b: &[u8], lo: usize, dot: usize) -> String {
    let mut start = dot;
    let mut j = dot;
    loop {
        while j > lo && (b[j - 1] == b' ' || b[j - 1] == b'\n') {
            j -= 1;
        }
        // One segment backwards.
        let seg_end = j;
        while j > lo {
            let c = b[j - 1];
            if c == b']' || c == b')' {
                match matching_back(b, lo, j - 1) {
                    Some(open) => j = open,
                    None => break,
                }
            } else if c.is_ascii_alphanumeric() || c == b'_' {
                j -= 1;
            } else {
                break;
            }
        }
        if j == seg_end {
            break;
        }
        start = j;
        let mut w = j;
        while w > lo && (b[w - 1] == b' ' || b[w - 1] == b'\n') {
            w -= 1;
        }
        if w > lo && b[w - 1] == b'.' {
            j = w - 1;
            continue;
        }
        break;
    }
    String::from_utf8_lossy(&b[start..dot])
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect()
}

/// Argument count of a call with parens at `[open, args_end]`: top-level
/// commas + 1, or 0 for `()`.
fn call_arity(b: &[u8], open: usize, args_end: usize) -> usize {
    let inner = &b[open + 1..args_end.min(b.len())];
    if inner.iter().all(|&c| c.is_ascii_whitespace()) {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    // Toggle on `|` so inline-closure parameter commas (`fold(0, |a, b| …)`)
    // don't count as argument separators.
    let mut in_pipes = false;
    for &c in inner {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'|' if depth == 0 => in_pipes = !in_pipes,
            b',' if depth == 0 && !in_pipes => commas += 1,
            _ => {}
        }
    }
    // A trailing comma (multi-line call style) separates nothing.
    if commas > 0 && inner.iter().rev().find(|c| !c.is_ascii_whitespace()) == Some(&b',') {
        commas -= 1;
    }
    commas + 1
}

/// Drop `[…]`/`(…)` groups (index and call arguments) from a receiver.
fn strip_groups(s: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for ch in s.chars() {
        match ch {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(ch),
            _ => {}
        }
    }
    out
}

struct Closure {
    body: (usize, usize),
    /// Receiver method is an iterator adaptor whose result carries the
    /// closure value out (`map`-family).
    iterator_method: bool,
}

/// Find inline-closure bodies in `[lo, hi)`: `|…| expr` where the opening
/// `|` follows `(`, `,`, `=` or the `move` keyword.
fn closure_spans(b: &[u8], lo: usize, hi: usize) -> Vec<Closure> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        if b[i] != b'|' {
            i += 1;
            continue;
        }
        // `||` as the boolean operator vs an empty param list: decide by
        // the preceding token either way.
        let mut p = i;
        while p > lo && (b[p - 1] == b' ' || b[p - 1] == b'\n') {
            p -= 1;
        }
        let prev_ok = p == lo || matches!(b[p - 1], b'(' | b',' | b'=' | b'{') || (p >= 4 && &b[p - 4..p] == b"move");
        if !prev_ok {
            i += 1;
            continue;
        }
        // Param list: to the closing `|` (an empty list is `||`).
        let params_close = if i + 1 < hi && b[i + 1] == b'|' {
            i + 1
        } else {
            let mut q = i + 1;
            let mut depth = 0i32;
            while q < hi {
                match b[q] {
                    b'(' | b'[' | b'<' => depth += 1,
                    b')' | b']' | b'>' => depth -= 1,
                    b'|' if depth <= 0 => break,
                    b'\n' => {}
                    _ => {}
                }
                q += 1;
            }
            if q >= hi {
                i += 1;
                continue;
            }
            q
        };
        let mut body_start = params_close + 1;
        while body_start < hi && (b[body_start] == b' ' || b[body_start] == b'\n') {
            body_start += 1;
        }
        let body_end = if body_start < hi && b[body_start] == b'{' {
            matching(b, body_start, b'{', b'}').map(|e| e + 1).unwrap_or(hi)
        } else {
            // Expression body: to `,` or `)` at depth 0.
            let mut q = body_start;
            let mut depth = 0i32;
            while q < hi {
                match b[q] {
                    b'(' | b'[' | b'{' => depth += 1,
                    b')' | b']' | b'}' => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    b',' if depth == 0 => break,
                    _ => {}
                }
                q += 1;
            }
            q
        };
        // Iterator adaptor? look back past the `(` for `.map(` etc.
        let iterator_method = {
            let mut q = p;
            if q > lo && b[q - 1] == b'(' {
                q -= 1;
                let mut s = q;
                while s > lo && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
                    s -= 1;
                }
                matches!(
                    std::str::from_utf8(&b[s..q]).unwrap_or(""),
                    "map" | "filter_map" | "flat_map" | "retain" | "scan"
                )
            } else {
                false
            }
        };
        out.push(Closure {
            body: (body_start, body_end),
            iterator_method,
        });
        i = body_start.max(i + 1);
    }
    out
}

/// Statement classification for the token starting at `pos`: walk back to
/// the statement boundary and test for `let` / `if let` / `while let` /
/// `match` / `for` heads.
fn stmt_head(b: &[u8], lo: usize, pos: usize) -> (usize, String) {
    let mut j = pos;
    let mut paren = 0i32;
    let mut brace = 0i32;
    while j > lo {
        let c = b[j - 1];
        match c {
            b')' | b']' => paren += 1,
            b'(' | b'[' => {
                if paren == 0 {
                    break; // entered an enclosing group: treat as boundary
                }
                paren -= 1;
            }
            b'}' => brace += 1,
            b'{' => {
                if brace == 0 {
                    break;
                }
                brace -= 1;
            }
            b';' if paren == 0 && brace == 0 => break,
            _ => {}
        }
        j -= 1;
    }
    let head = String::from_utf8_lossy(&b[j..pos.min(b.len())]).into_owned();
    (j, head)
}

fn stmt_is_let(b: &[u8], lo: usize, pos: usize) -> bool {
    let_binding_start(b, lo, pos).is_some()
}

/// If the value produced at `pos` is bound by an enclosing `let` — either
/// directly or through `if`/`match` wrapper arms whose result flows into
/// the binding (`let g = match p { Some(_) => m.lock(), .. };`) — return
/// the position of the `let` statement's head. The guard then lives to
/// the end of the block enclosing the `let`, not the wrapper arm.
fn let_binding_start(b: &[u8], lo: usize, pos: usize) -> Option<usize> {
    let mut p = pos;
    for _ in 0..3 {
        let (start, head) = stmt_head(b, lo, p);
        let t = head.trim_start().trim_start_matches("else ").trim_start();
        if let Some(rest) = t.strip_prefix("let ") {
            // `let _ =` drops immediately; `_g` holds.
            let bind = rest.trim_start();
            if bind.starts_with("_ ") || bind.starts_with("_=") {
                return None;
            }
            return Some(start);
        }
        if start > lo && b[start - 1] == b'{' {
            // Inside a value-producing block (match arm, if/else branch,
            // tail expression): the binding, if any, is one level up.
            p = start - 1;
            continue;
        }
        return None;
    }
    None
}

/// The simple identifier a `let` statement binds (`let mut r = …` → `r`);
/// None for tuple/struct patterns.
fn let_bound_name(b: &[u8], let_start: usize) -> Option<String> {
    let text = std::str::from_utf8(&b[let_start..b.len().min(let_start + 120)]).ok()?;
    let rest = text.trim_start().strip_prefix("let ")?;
    let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
    let end = rest
        .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
        .unwrap_or(rest.len());
    let name = &rest[..end];
    let tail = rest[end..].trim_start();
    if name.is_empty() || !(tail.starts_with('=') || tail.starts_with(':')) {
        return None;
    }
    Some(name.to_string())
}

/// Where does the guard acquired at `dot` (call args ending at `args_end`)
/// statically die?
fn guard_scope_end(b: &[u8], lo: usize, hi: usize, dot: usize, args_end: usize, _ctx: &FileCtx<'_>) -> usize {
    let (_, head) = stmt_head(b, lo, dot);
    let t = head.trim_start().trim_start_matches("else ").trim_start();
    // `if let` / `while let` must win over the plain-`let` check below, so
    // only consult the binding ascent when the head isn't a construct.
    let construct = ["if let ", "while let ", "if ", "while ", "match ", "for "]
        .iter()
        .any(|p| t.starts_with(p));
    if !construct {
        if let Some(let_start) = let_binding_start(b, lo, dot) {
            // `let v = m.lock().iter()….collect();` binds the chained
            // result, not the guard — the guard is a temporary that dies at
            // the end of the statement (fall through). Only an unchained
            // acquisition is the bound value itself.
            let mut q = args_end + 1;
            while q < hi && (b[q].is_ascii_whitespace() || b[q] == b'?') {
                q += 1;
            }
            if q >= hi || b[q] != b'.' {
                // The guard lives to the end of the block enclosing the
                // `let` statement (which may be shallower than the call when
                // bound through a match/if wrapper expression) — unless an
                // explicit `drop(guard)` releases it early on every path.
                let end = enclosing_block_end(b, lo, hi, let_start);
                if let Some(name) = let_bound_name(b, let_start) {
                    if let Some(d) = unconditional_drop(b, args_end + 1, end, &name) {
                        return d;
                    }
                }
                return end;
            }
        }
    }
    for prefix in ["if let ", "while let ", "if ", "while ", "match ", "for "] {
        if t.starts_with(prefix) {
            // Guard lives through the construct's brace block. Scan from
            // *past* the acquisition's own closing paren.
            let mut q = args_end + 1;
            let mut depth = 0i32;
            while q < hi {
                match b[q] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => return matching(b, q, b'{', b'}').unwrap_or(hi),
                    _ => {}
                }
                q += 1;
            }
            return hi;
        }
    }
    // Plain temporary: to the end of the statement. Scan from *past* the
    // acquisition's own closing paren.
    let mut q = args_end + 1;
    let mut depth = 0i32;
    while q < hi {
        match b[q] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return q;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return q,
            _ => {}
        }
        q += 1;
    }
    hi
}

/// First `drop(<name>)` at the *same brace depth* as the scan start, or
/// None. A drop nested inside an `if`/`match` arm may not execute on every
/// path, so only a statement-level drop shortens the guard's held interval
/// — anything conditional keeps the conservative block-end scope.
fn unconditional_drop(b: &[u8], from: usize, to: usize, name: &str) -> Option<usize> {
    let nb = name.as_bytes();
    let mut depth = 0i32;
    let mut i = from;
    while i + 5 <= to {
        match b[i] {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            b'd' if depth == 0 && &b[i..i + 5] == b"drop(" => {
                let prev_ok = i == 0 || {
                    let p = b[i - 1];
                    !(p.is_ascii_alphanumeric() || p == b'_' || p == b'.')
                };
                if prev_ok {
                    let mut j = i + 5;
                    while j < to && b[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if j + nb.len() < to && &b[j..j + nb.len()] == nb {
                        let mut k = j + nb.len();
                        while k < to && b[k].is_ascii_whitespace() {
                            k += 1;
                        }
                        if k < to && b[k] == b')' {
                            return Some(i);
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn enclosing_block_end(b: &[u8], lo: usize, hi: usize, pos: usize) -> usize {
    // Depth at `pos` relative to `lo`, then the `}` that drops below it.
    let mut depth = 0i32;
    for &c in &b[lo..pos] {
        match c {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
    }
    let mut q = pos;
    let mut d = depth;
    while q < hi {
        match b[q] {
            b'{' => d += 1,
            b'}' => {
                d -= 1;
                if d < depth {
                    return q;
                }
            }
            _ => {}
        }
        q += 1;
    }
    hi
}

fn matching(b: &[u8], open_pos: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open_pos;
    while i < b.len() {
        if b[i] == open {
            depth += 1;
        } else if b[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

fn matching_back(b: &[u8], lo: usize, close_pos: usize) -> Option<usize> {
    let close = b[close_pos];
    let open = match close {
        b')' => b'(',
        b']' => b'[',
        _ => return None,
    };
    let mut depth = 0usize;
    let mut i = close_pos + 1;
    while i > lo {
        i -= 1;
        if b[i] == close {
            depth += 1;
        } else if b[i] == open {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

fn find_word(b: &[u8], word: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + word.len() <= b.len() {
        if &b[i..i + word.len()] == word {
            let pre_ok = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
            let post_ok =
                i + word.len() >= b.len() || !(b[i + word.len()].is_ascii_alphanumeric() || b[i + word.len()] == b'_');
            if pre_ok && post_ok {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Some parameter type is closure-capable: an `impl Fn…`/`Fn…` bound, a fn
/// pointer, or a bare short generic (`f: F`). Used to gate resolution of
/// calls that pass a closure literal — iterator adapters like
/// `.find(|x| …)` must never bind to a workspace fn taking plain data.
fn params_take_closure(params: &[u8]) -> bool {
    let text = String::from_utf8_lossy(params);
    if text.contains("Fn") || text.contains("fn(") {
        return true;
    }
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut start = 0usize;
    for i in 0..=bytes.len() {
        let c = if i < bytes.len() { bytes[i] } else { b',' };
        match c {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b',' if depth <= 0 => {
                let piece = &text[start..i.min(text.len())];
                start = i + 1;
                if let Some((_, ty)) = piece.split_once(':') {
                    let ty = ty.trim().trim_start_matches('&').trim();
                    if !ty.is_empty()
                        && ty.len() <= 2
                        && ty.chars().next().is_some_and(|ch| ch.is_ascii_uppercase())
                        && ty.chars().all(|ch| ch.is_ascii_alphanumeric())
                    {
                        return true;
                    }
                }
            }
            _ => {}
        }
    }
    false
}

/// Parameters declared with a concrete named type (`reg: &Registry`,
/// `inner: &mut Inner`): method calls through them resolve against that
/// type's impl blocks only, exactly like typed locals. Short identifiers
/// (≤2 chars) are generic type parameters, and lowercase-leading types
/// (`dyn Trait`, `impl Fn…`, paths like `std::…`) stay untyped so their
/// calls keep the conservative name-based resolution.
fn param_types(params: &[u8]) -> Vec<(String, String)> {
    let text = String::from_utf8_lossy(params).into_owned();
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for i in 0..=bytes.len() {
        let c = if i < bytes.len() { bytes[i] } else { b',' };
        match c {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b',' if depth <= 0 => {
                let piece = &text[start..i.min(text.len())];
                start = i + 1;
                let Some((name, ty)) = piece.split_once(':') else {
                    continue;
                };
                let name = name.trim().strip_prefix("mut ").unwrap_or(name.trim()).trim();
                if name.is_empty() || name == "self" || !name.bytes().all(|ch| ch.is_ascii_alphanumeric() || ch == b'_')
                {
                    continue;
                }
                let mut ty = ty.trim();
                loop {
                    let stripped = ty.trim_start_matches('&').trim_start();
                    let stripped = stripped.strip_prefix("mut ").unwrap_or(stripped).trim_start();
                    let stripped = if stripped.starts_with('\'') {
                        match stripped.find(char::is_whitespace) {
                            Some(w) => stripped[w..].trim_start(),
                            None => stripped,
                        }
                    } else {
                        stripped
                    };
                    if stripped == ty {
                        break;
                    }
                    ty = stripped;
                }
                let ident: String = ty
                    .chars()
                    .take_while(|ch| ch.is_ascii_alphanumeric() || *ch == '_')
                    .collect();
                if ident.len() >= 3
                    && ident.chars().next().is_some_and(|ch| ch.is_ascii_uppercase())
                    && !ty[ident.len()..].starts_with(':')
                {
                    out.push((name.to_string(), ident));
                }
            }
            _ => {}
        }
    }
    out
}

fn param_names(params: &[u8]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let text = params;
    for i in 0..=text.len() {
        let c = if i < text.len() { text[i] } else { b',' };
        match c {
            b'(' | b'[' | b'<' => depth += 1,
            b')' | b']' | b'>' => depth -= 1,
            b',' if depth <= 0 => {
                let piece = String::from_utf8_lossy(&text[start..i.min(text.len())]).into_owned();
                start = i + 1;
                let name = piece.split(':').next().unwrap_or("").trim();
                let name = name.trim_start_matches("mut ").trim_start_matches('&').trim();
                if !name.is_empty() && name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_') && name != "self"
                {
                    out.push(name.to_string());
                }
            }
            _ => {}
        }
    }
    out
}

/// Iterative Tarjan SCC over an adjacency list.
pub(crate) fn tarjan(adj: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Frame: (node, neighbor iterator position)
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        call.push((start, adj[start].iter().copied().collect(), 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some((v, neigh, mut pos)) = call.pop() {
            let mut descended = false;
            while pos < neigh.len() {
                let w = neigh[pos];
                pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((v, neigh, pos));
                    call.push((w, adj[w].iter().copied().collect(), 0));
                    descended = true;
                    break;
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                sccs.push(comp);
            }
            if let Some(frame) = call.last_mut() {
                let parent = frame.0;
                low[parent] = low[parent].min(low[v]);
            }
        }
    }
    sccs
}

/// A `BTreeMap` keyed rendering of the site-pair edge set, for debugging
/// and the `lock-report` renderer.
pub fn render_edges(model: &LockModel) -> String {
    let mut out = String::new();
    let mut rows: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in &model.edges {
        rows.entry(model.describe(e.from))
            .or_default()
            .push(model.describe(e.to));
    }
    for (from, tos) in rows {
        for to in tos {
            out.push_str(&format!("{from} -> {to}\n"));
        }
    }
    out
}
