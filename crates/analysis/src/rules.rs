//! The repo-invariant rules enforced by `ofmf-lint`.
//!
//! Every rule is deny-by-default: a finding is an error unless the
//! offending line (or the line above it) carries an
//! `// ofmf-lint: allow(<rule>, "<reason>")` escape with a non-empty
//! reason. The rules:
//!
//! * **`no-panic-path`** — `unwrap()`, `expect(…)`, `panic!(…)` and
//!   non-string array indexing are forbidden in non-test code of the
//!   production crates (`core`, `rest`, `redfish`, `composer`, `agents`).
//!   The manager is the one component of the fabric that cannot be failed
//!   over to itself; request paths return `RedfishError`, they never
//!   panic.
//! * **`no-std-sync`** — blocking primitives must come from the in-tree
//!   `parking_lot` shim so `--features lockcheck` observes every lock in
//!   the workspace. `std::sync::{Mutex, RwLock, Condvar, Barrier}` are
//!   invisible to the lock-order graph.
//! * **`obs-name-convention`** — every metric id defined via
//!   `counter/gauge/histogram("…")` (including `format!` templates) must
//!   match `ofmf.<subsystem>.<dotted…>` (lowercase, ≥ 3 segments), be
//!   defined at exactly one site, and every id referenced by
//!   `ofmf_cli stats` or the README must exist as a definition.
//! * **`atomic-ordering-audit`** — `Ordering::Relaxed` on `.load(…)` /
//!   `.store(…)` outside the obs counter internals is flagged: relaxed
//!   RMW counters are fine, relaxed flag publication across threads is
//!   not.
//! * **`span-name-convention`** — every span name passed to
//!   `root_span/enter_span/child_span("…")` must match
//!   `ofmf.<subsystem>.<op>` (lowercase, ≥ 3 segments) and be opened at
//!   exactly one call site, so a name in a rendered trace always pins one
//!   place in the code.
//! * **`wal-write-facade`** — durable state flows through the `ofmf-wal`
//!   crate only: direct file writes (`fs::write`, `File::create`,
//!   `OpenOptions::new`) are forbidden in non-test code of the production
//!   crates, and inside `crates/wal/` every `sync_all`/`sync_data` call
//!   must carry a `// ofmf-wal: policy` tag citing the fsync-policy
//!   decision it implements.
//! * **`syscall-facade`** — raw kernel access (`unsafe`, inline `asm!`, or
//!   an `allow(unsafe_code)` attribute) is confined to the event loop's
//!   audited syscall facade (`crates/rest/src/event_loop/sys.rs`); the
//!   rest of the workspace stays safe Rust, so there is exactly one file
//!   to audit for memory-safety.
//! * **`lock-discipline`** — the static lock-order graph (see
//!   [`crate::lockgraph`]) must be acyclic over lock keys, and any site
//!   that re-acquires its own key inside an iterator closure (multi-shard
//!   spans) must state the global acquisition order that makes it safe.
//! * **`no-blocking-while-locked`** — file I/O, `Clock::wait_ms`, channel
//!   `recv`/`send` and blocking waits are forbidden while a shim lock
//!   guard is statically live; intentional holds (WAL group-commit fsync)
//!   carry a reasoned escape, which also excuses the matching runtime
//!   sanitizer violation during `--lock-audit`.

use crate::scan::FileScan;
use crate::Diagnostic;

/// Rule identifiers (the names accepted by `allow(...)`).
pub const RULES: [&str; 9] = [
    "no-panic-path",
    "no-std-sync",
    "obs-name-convention",
    "atomic-ordering-audit",
    "span-name-convention",
    "wal-write-facade",
    "syscall-facade",
    "lock-discipline",
    "no-blocking-while-locked",
];

/// The single file allowed to contain `unsafe` code and inline assembly:
/// the event loop's epoll syscall wrappers.
const SYSCALL_FACADE_FILE: &str = "crates/rest/src/event_loop/sys.rs";

/// Crates whose non-test code must never panic.
const PANIC_PATH_CRATES: [&str; 6] = [
    "crates/core/",
    "crates/rest/",
    "crates/redfish/",
    "crates/composer/",
    "crates/agents/",
    "crates/wal/",
];

/// Crates that must route every durable write through `ofmf-wal`.
const WAL_FACADE_CRATES: [&str; 5] = [
    "crates/core/",
    "crates/rest/",
    "crates/redfish/",
    "crates/composer/",
    "crates/agents/",
];

/// Files exempt from `atomic-ordering-audit` (the lock-free obs counter
/// internals are the one place relaxed loads are the design).
const ORDERING_EXEMPT: [&str; 1] = ["crates/obs/src/metrics.rs"];

/// The file whose `"ofmf.…"` literals are *references* (stats lookups),
/// not definitions.
const CLI_FILE: &str = "src/bin/ofmf_cli.rs";

/// Histogram export suffixes (`<name>.p99` in a reference resolves against
/// the histogram `<name>`).
const HISTO_SUFFIXES: [&str; 6] = [".count", ".mean", ".p50", ".p95", ".p99", ".max"];

pub(crate) fn file_rules(path: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    let panic_scoped = PANIC_PATH_CRATES.iter().any(|c| path.starts_with(c));
    let facade_scoped = WAL_FACADE_CRATES.iter().any(|c| path.starts_with(c));
    let wal_crate = path.starts_with("crates/wal/");
    let ordering_exempt = ORDERING_EXEMPT.contains(&path);
    for (idx, line) in scan.masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        if scan.is_test_line(lineno) {
            continue;
        }
        if panic_scoped {
            no_panic_path(path, lineno, line, out);
        }
        if facade_scoped {
            wal_write_facade(path, lineno, line, out);
        }
        if wal_crate {
            wal_fsync_policy(path, lineno, line, scan, out);
        }
        no_std_sync(path, lineno, line, out);
        if !ordering_exempt {
            atomic_ordering_audit(path, lineno, line, out);
        }
        if path != SYSCALL_FACADE_FILE {
            syscall_facade(path, lineno, line, out);
        }
    }
}

/// Raw kernel access anywhere but the audited facade file: the point of
/// hand-rolling epoll without libc is that the unsafety has exactly one
/// address.
fn syscall_facade(path: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    let what = if line.contains("allow(unsafe_code)") {
        Some("`allow(unsafe_code)` attribute")
    } else if line.contains("asm!(") {
        Some("inline assembly")
    } else if contains_word(line, "unsafe") && !line.contains("unsafe_code") {
        Some("`unsafe` code")
    } else {
        None
    };
    if let Some(what) = what {
        out.push(Diagnostic {
            file: path.to_string(),
            line: lineno,
            rule: "syscall-facade",
            message: format!(
                "{what} outside the audited syscall facade; raw kernel access lives only in {SYSCALL_FACADE_FILE}"
            ),
        });
    }
}

/// Direct file I/O in a production crate bypasses the journal: crash
/// recovery can only replay what went through `ofmf-wal`.
fn wal_write_facade(path: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    for (pat, what) in [
        ("fs::write(", "direct file write"),
        ("File::create(", "direct file creation"),
        ("OpenOptions::new", "direct writable file open"),
    ] {
        if line.contains(pat) {
            out.push(Diagnostic {
                file: path.to_string(),
                line: lineno,
                rule: "wal-write-facade",
                message: format!(
                    "{what} bypasses the ofmf-wal facade; durable control-plane state must go through the journal"
                ),
            });
            return;
        }
    }
}

/// Inside `crates/wal/`, every fsync call must cite the policy decision it
/// implements with a `// ofmf-wal: policy` tag on the same or preceding
/// line — the fsync schedule IS the durability contract.
fn wal_fsync_policy(path: &str, lineno: usize, line: &str, scan: &FileScan, out: &mut Vec<Diagnostic>) {
    if !(line.contains(".sync_all(") || line.contains(".sync_data(")) {
        return;
    }
    let tagged = scan.policy_tags.contains(&lineno) || (lineno > 1 && scan.policy_tags.contains(&(lineno - 1)));
    if !tagged {
        out.push(Diagnostic {
            file: path.to_string(),
            line: lineno,
            rule: "wal-write-facade",
            message: "fsync site without a `// ofmf-wal: policy` tag; cite the FsyncPolicy decision this implements"
                .to_string(),
        });
    }
}

fn no_panic_path(path: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    for (pat, what) in [
        (".unwrap()", "unwrap() panics on None/Err"),
        (".expect(", "expect(…) panics on None/Err"),
        ("panic!(", "explicit panic"),
    ] {
        if line.contains(pat) {
            out.push(Diagnostic {
                file: path.to_string(),
                line: lineno,
                rule: "no-panic-path",
                message: format!("{what}; return a RedfishError/supervisor error instead"),
            });
        }
    }
    // Array/slice indexing: `expr[…]` where the index is not a string
    // literal (serde_json string indexing is total; slice indexing panics
    // out of bounds).
    let b = line.as_bytes();
    for k in 1..b.len() {
        if b[k] != b'[' {
            continue;
        }
        let prev = b[k - 1];
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']') {
            continue;
        }
        // First non-space char inside the brackets.
        let mut j = k + 1;
        while j < b.len() && b[j] == b' ' {
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            continue; // string-literal index (serde_json object member)
        }
        out.push(Diagnostic {
            file: path.to_string(),
            line: lineno,
            rule: "no-panic-path",
            message: "indexing can panic out of bounds; use .get(…) or prove the bound and allow with a reason"
                .to_string(),
        });
        break; // one indexing diagnostic per line is enough
    }
}

fn no_std_sync(path: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    if !line.contains("std::sync::") {
        return;
    }
    for prim in ["Mutex", "RwLock", "Condvar", "Barrier"] {
        let direct = line.contains(&format!("std::sync::{prim}"));
        let imported = line.trim_start().starts_with("use std::sync::") && contains_word(line, prim);
        if direct || imported {
            out.push(Diagnostic {
                file: path.to_string(),
                line: lineno,
                rule: "no-std-sync",
                message: format!("std::sync::{prim} bypasses the parking_lot shim and is invisible to lockcheck"),
            });
            return;
        }
    }
}

fn atomic_ordering_audit(path: &str, lineno: usize, line: &str, out: &mut Vec<Diagnostic>) {
    if line.contains("Ordering::Relaxed") && (line.contains(".load(") || line.contains(".store(")) {
        out.push(Diagnostic {
            file: path.to_string(),
            line: lineno,
            rule: "atomic-ordering-audit",
            message: "Relaxed load/store: if this atomic publishes state across threads use Acquire/Release, \
                      otherwise state why Relaxed suffices"
                .to_string(),
        });
    }
}

fn contains_word(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let mut from = 0usize;
    while let Some(p) = line.get(from..).and_then(|s| s.find(word)) {
        let start = from + p;
        let end = start + word.len();
        let pre_ok = start == 0 || !(b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_');
        let post_ok = end >= b.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

// ---------------------------------------------------------------------------
// obs-name-convention (cross-file)
// ---------------------------------------------------------------------------

/// One metric definition site.
#[derive(Debug, Clone)]
pub(crate) struct MetricDef {
    pub file: String,
    pub line: usize,
    pub kind: &'static str,
    /// The literal or `format!` template (placeholders kept as `{…}`).
    pub name: String,
}

/// Collect `counter/gauge/histogram("…")` definitions from a scanned file.
pub(crate) fn collect_metric_defs(path: &str, scan: &FileScan, defs: &mut Vec<MetricDef>) {
    if path == CLI_FILE {
        return; // the CLI looks names up; it defines nothing
    }
    for lit in &scan.strings {
        if scan.is_test_line(lit.line) {
            continue;
        }
        let Some(kind) = defining_call(&scan.masked, lit.start) else {
            continue;
        };
        defs.push(MetricDef {
            file: path.to_string(),
            line: lit.line,
            kind,
            name: lit.content.clone(),
        });
    }
}

/// If the string starting at `start` is the first argument of a
/// `counter(` / `gauge(` / `histogram(` call (directly or through
/// `&format!(`), return the instrument kind.
fn defining_call(masked: &str, start: usize) -> Option<&'static str> {
    let mut prefix = masked.get(..start)?.trim_end();
    if let Some(p) = prefix.strip_suffix("format!(") {
        prefix = p.trim_end();
        prefix = prefix.strip_suffix('&').unwrap_or(prefix).trim_end();
    }
    for kind in ["counter", "gauge", "histogram"] {
        if let Some(head) = prefix.strip_suffix(&format!("{kind}(")) {
            // Reject method names merely *ending* in the kind, e.g.
            // `sub_counter(`; require a non-identifier char (or start) before.
            let ok = head
                .as_bytes()
                .last()
                .map(|&b| !(b.is_ascii_alphanumeric() || b == b'_'))
                .unwrap_or(true);
            if ok {
                return Some(match kind {
                    "counter" => "counter",
                    "gauge" => "gauge",
                    _ => "histogram",
                });
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// span-name-convention (cross-file)
// ---------------------------------------------------------------------------

/// One span-opening site.
#[derive(Debug, Clone)]
pub(crate) struct SpanDef {
    pub file: String,
    pub line: usize,
    /// The constructor used (`root_span` / `enter_span` / `child_span`).
    pub kind: &'static str,
    pub name: String,
}

/// Collect `root_span/enter_span/child_span("…")` sites from a scanned file.
pub(crate) fn collect_span_defs(path: &str, scan: &FileScan, defs: &mut Vec<SpanDef>) {
    if path == CLI_FILE {
        return; // the CLI renders recorded names; it opens no spans
    }
    for lit in &scan.strings {
        if scan.is_test_line(lit.line) {
            continue;
        }
        let Some(kind) = span_call(&scan.masked, lit.start) else {
            continue;
        };
        defs.push(SpanDef {
            file: path.to_string(),
            line: lit.line,
            kind,
            name: lit.content.clone(),
        });
    }
}

/// If the string starting at `start` is the first argument of a span
/// constructor, return which one.
fn span_call(masked: &str, start: usize) -> Option<&'static str> {
    let prefix = masked.get(..start)?.trim_end();
    for kind in ["root_span", "enter_span", "child_span"] {
        if let Some(head) = prefix.strip_suffix(&format!("{kind}(")) {
            // Require a non-identifier char (or start) before, so e.g. a
            // method merely ending in `_child_span(` does not count.
            let ok = head
                .as_bytes()
                .last()
                .map(|&b| !(b.is_ascii_alphanumeric() || b == b'_'))
                .unwrap_or(true);
            if ok {
                return Some(match kind {
                    "root_span" => "root_span",
                    "enter_span" => "enter_span",
                    _ => "child_span",
                });
            }
        }
    }
    None
}

/// Validate span names: pattern conformance plus one-call-site uniqueness
/// (a span name in a rendered trace must pin exactly one place in code).
pub(crate) fn span_name_convention(defs: &[SpanDef], out: &mut Vec<Diagnostic>) {
    for d in defs {
        if let Some(problem) = name_pattern_problem(&d.name) {
            out.push(Diagnostic {
                file: d.file.clone(),
                line: d.line,
                rule: "span-name-convention",
                message: format!("span name \"{}\" {problem} (want ofmf.<subsystem>.<op>)", d.name),
            });
        }
    }
    let mut first_site: std::collections::BTreeMap<&str, &SpanDef> = std::collections::BTreeMap::new();
    for d in defs {
        match first_site.get(d.name.as_str()) {
            None => {
                first_site.insert(&d.name, d);
            }
            Some(first) => {
                out.push(Diagnostic {
                    file: d.file.clone(),
                    line: d.line,
                    rule: "span-name-convention",
                    message: format!(
                        "span \"{}\" already opened via {} at {}:{}; span names must be globally unique",
                        d.name, first.kind, first.file, first.line
                    ),
                });
            }
        }
    }
}

/// Collect metric references from the CLI source.
pub(crate) fn collect_cli_refs(path: &str, scan: &FileScan, refs: &mut Vec<(String, usize, String)>) {
    if path != CLI_FILE {
        return;
    }
    for lit in &scan.strings {
        if scan.is_test_line(lit.line) {
            continue;
        }
        if lit.content.starts_with("ofmf.") && lit.content.matches('.').count() >= 2 {
            refs.push((path.to_string(), lit.line, lit.content.clone()));
        }
    }
}

/// Collect backticked `ofmf.…` references from the README.
pub(crate) fn collect_readme_refs(path: &str, content: &str, refs: &mut Vec<(String, usize, String)>) {
    for (idx, line) in content.split('\n').enumerate() {
        // Odd-position chunks are inside backticks.
        let mut inside = false;
        for chunk in line.split('`') {
            if inside
                && chunk.starts_with("ofmf.")
                && !chunk.contains('<')
                && !chunk.contains(char::is_whitespace)
                && chunk.matches('.').count() >= 2
            {
                refs.push((path.to_string(), idx + 1, chunk.to_string()));
            }
            inside = !inside;
        }
    }
}

/// Validate definitions (pattern + uniqueness) and resolve references.
/// Span names count as definitions for reference resolution: the README and
/// CLI may name `ofmf.<subsystem>.<op>` spans as well as metric ids.
pub(crate) fn obs_name_convention(
    defs: &[MetricDef],
    span_defs: &[SpanDef],
    refs: &[(String, usize, String)],
    out: &mut Vec<Diagnostic>,
) {
    // Pattern conformance.
    for d in defs {
        if let Some(problem) = name_pattern_problem(&d.name) {
            out.push(Diagnostic {
                file: d.file.clone(),
                line: d.line,
                rule: "obs-name-convention",
                message: format!("metric id \"{}\" {problem} (want ofmf.<subsystem>.<dotted…>)", d.name),
            });
        }
    }
    // Global uniqueness of literal ids (templates are skipped: their
    // expansion is data-dependent).
    let mut first_site: std::collections::BTreeMap<&str, &MetricDef> = std::collections::BTreeMap::new();
    for d in defs {
        if d.name.contains('{') {
            continue;
        }
        match first_site.get(d.name.as_str()) {
            None => {
                first_site.insert(&d.name, d);
            }
            Some(first) => {
                out.push(Diagnostic {
                    file: d.file.clone(),
                    line: d.line,
                    rule: "obs-name-convention",
                    message: format!(
                        "metric id \"{}\" already defined as a {} at {}:{}; ids must be globally unique",
                        d.name, first.kind, first.file, first.line
                    ),
                });
            }
        }
    }
    // Reference resolution.
    for (file, line, r) in refs {
        if !reference_resolves(r, defs) && !span_defs.iter().any(|s| s.name == *r) {
            out.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: "obs-name-convention",
                message: format!("\"{r}\" references a metric no definition site provides"),
            });
        }
    }
}

/// `None` when the (possibly templated) id conforms to the convention.
fn name_pattern_problem(name: &str) -> Option<&'static str> {
    if !name.starts_with("ofmf.") {
        return Some("must start with `ofmf.`");
    }
    let segments: Vec<&str> = name.split('.').collect();
    if segments.len() < 3 {
        return Some("needs at least <subsystem> and one more segment");
    }
    for seg in &segments {
        if seg.is_empty() {
            return Some("has an empty segment");
        }
        let mut chars = seg.chars();
        while let Some(c) = chars.next() {
            if c == '{' {
                // Skip the placeholder body.
                for p in chars.by_ref() {
                    if p == '}' {
                        break;
                    }
                }
                continue;
            }
            if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
                return Some("has characters outside [a-z0-9_] segments");
            }
        }
    }
    None
}

fn reference_resolves(r: &str, defs: &[MetricDef]) -> bool {
    // Docs may use brace sets as shorthand for several ids:
    // `ofmf.events.index.{candidates,skipped}.total`. Every expansion must
    // resolve.
    let expanded = expand_braces(r);
    if expanded.len() > 1 {
        return expanded.iter().all(|e| reference_resolves(e, defs));
    }
    // Trailing-dot references are prefixes (`ofmf.events.index.`). A
    // template definition diverges from its literal prefix only at `{`,
    // so plain starts_with covers both.
    if let Some(prefix) = r.strip_suffix('.') {
        return defs.iter().any(|d| d.name.starts_with(prefix));
    }
    if defs.iter().any(|d| d.name == r || template_matches(&d.name, r)) {
        return true;
    }
    // Histogram export suffixes.
    for s in HISTO_SUFFIXES {
        if let Some(base) = r.strip_suffix(s) {
            if defs
                .iter()
                .any(|d| d.kind == "histogram" && (d.name == base || template_matches(&d.name, base)))
            {
                return true;
            }
        }
    }
    false
}

/// Expand one `{a,b,…}` alternative set; ids without a comma-set expand to
/// themselves.
fn expand_braces(r: &str) -> Vec<String> {
    let (Some(open), Some(close)) = (r.find('{'), r.find('}')) else {
        return vec![r.to_string()];
    };
    if close < open || !r[open..close].contains(',') {
        return vec![r.to_string()];
    }
    r[open + 1..close]
        .split(',')
        .map(|alt| format!("{}{}{}", &r[..open], alt, &r[close + 1..]))
        .collect()
}

/// Does template `t` (placeholders `{…}` match any non-empty `[a-z0-9_]*`
/// run) match the concrete id `c` segment-wise?
fn template_matches(t: &str, c: &str) -> bool {
    if !t.contains('{') {
        return false;
    }
    let ts: Vec<&str> = t.split('.').collect();
    let cs: Vec<&str> = c.split('.').collect();
    if ts.len() != cs.len() {
        return false;
    }
    ts.iter().zip(cs.iter()).all(|(tseg, cseg)| segment_matches(tseg, cseg))
}

fn segment_matches(tseg: &str, cseg: &str) -> bool {
    if !tseg.contains('{') {
        return tseg == cseg;
    }
    // Split the template segment into fixed parts around placeholders.
    let mut fixed: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut chars = tseg.chars();
    while let Some(ch) = chars.next() {
        if ch == '{' {
            fixed.push(std::mem::take(&mut cur));
            for p in chars.by_ref() {
                if p == '}' {
                    break;
                }
            }
        } else {
            cur.push(ch);
        }
    }
    fixed.push(cur);
    // `cseg` must start with the first part, end with the last, and
    // contain the middles in order.
    let first = &fixed[0];
    let last = &fixed[fixed.len() - 1];
    if !cseg.starts_with(first.as_str()) || !cseg.ends_with(last.as_str()) {
        return false;
    }
    let mut rest = &cseg[first.len()..];
    for mid in &fixed[1..fixed.len() - 1] {
        if mid.is_empty() {
            continue;
        }
        match rest.find(mid.as_str()) {
            Some(p) => rest = &rest[p + mid.len()..],
            None => return false,
        }
    }
    rest.len() >= last.len()
}
