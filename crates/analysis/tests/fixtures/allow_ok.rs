// Fixture: a valid allow escape suppresses the finding.
pub fn f(o: Option<u32>) -> u32 {
    // ofmf-lint: allow(no-panic-path, "fixture: value is always Some")
    o.unwrap()
}
