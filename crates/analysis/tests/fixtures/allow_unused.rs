// Fixture: an escape that suppresses nothing must be reported as dead.
// ofmf-lint: allow(no-std-sync, "nothing here touches std sync")
pub fn f() -> u32 {
    41 + 1
}
