// Fixture: clean production code; the test module below may panic freely.
use parking_lot::Mutex;

pub fn add(a: u32, b: u32) -> u32 {
    a.saturating_add(b)
}

pub fn guarded() -> u32 {
    static CELL: Mutex<u32> = Mutex::new(3);
    *CELL.lock()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_are_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let xs = [1, 2, 3];
        assert_eq!(xs[0], 1);
    }
}
