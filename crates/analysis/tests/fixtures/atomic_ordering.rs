// Fixture: Relaxed load/store flagged as cross-thread handoff hazards.
use std::sync::atomic::{AtomicBool, Ordering};

pub fn f(flag: &AtomicBool) -> bool {
    flag.store(true, Ordering::Relaxed);
    flag.load(Ordering::Relaxed)
}
