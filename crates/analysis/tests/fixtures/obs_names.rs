// Fixture: metric-name convention violations.
pub fn setup() {
    let _a = ofmf_obs::counter("Bad.Name.Total");
    let _b = ofmf_obs::counter("ofmf.short");
    let _c = ofmf_obs::gauge("ofmf.demo.value");
    let _d = ofmf_obs::counter("ofmf.demo.value");
}
