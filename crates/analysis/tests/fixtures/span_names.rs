pub fn handler() {
    let _a = ofmf_obs::root_span("request");
    let _b = ofmf_obs::enter_span("ofmf.compose");
    let _c = ofmf_obs::child_span("ofmf.demo.bind");
}

pub fn other_handler() {
    let _d = ofmf_obs::child_span("ofmf.demo.bind");
    let _e = my_child_span("not.a.span.name");
}

#[cfg(test)]
mod tests {
    fn exempt() {
        let _t = ofmf_obs::root_span("test spans are exempt");
    }
}
