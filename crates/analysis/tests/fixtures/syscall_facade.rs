//! Fixture: raw kernel access outside the audited syscall facade.
#![allow(unsafe_code)]

pub fn probe() -> isize {
    let ret: isize;
    unsafe {
        core::arch::asm!("mov {0}, 0", out(reg) ret);
    }
    ret
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unsafe_is_exempt() {
        let _zero: u8 = unsafe { std::mem::zeroed() };
    }
}
