// Fixture: std::sync primitives bypassing the parking_lot shim.
use std::sync::Mutex;

pub fn f() -> u32 {
    let l = std::sync::RwLock::new(1u32);
    let g = Mutex::new(2u32);
    let a = *l.read().unwrap_or_else(|e| e.into_inner());
    let b = *g.lock().unwrap_or_else(|e| e.into_inner());
    a + b
}
