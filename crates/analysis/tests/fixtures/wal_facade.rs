//! wal-write-facade fixture: direct file I/O in a production crate, plus
//! tagged and untagged fsync sites for the wal-crate variant.
use std::fs::{self, File, OpenOptions};

fn sideload_state(doc: &str) {
    fs::write("/var/lib/ofmf/state.json", doc).ok();
}

fn scratch() -> std::io::Result<File> {
    File::create("/tmp/ofmf-scratch")
}

fn reopen() -> std::io::Result<File> {
    OpenOptions::new().append(true).open("/tmp/ofmf-scratch")
}

fn durable_tagged(f: &File) -> std::io::Result<()> {
    // ofmf-wal: policy — fixture: the durability point of this fake path
    f.sync_all()
}

fn durable_untagged(f: &File) -> std::io::Result<()> {
    f.sync_data()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_write_files() {
        std::fs::write("/tmp/fixture-test", b"ok").unwrap();
    }
}
