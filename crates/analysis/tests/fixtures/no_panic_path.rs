// Fixture: every panic path the rule must catch, one per line.
pub fn f(xs: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap();
    let b = o.expect("present");
    if a > b {
        panic!("boom");
    }
    xs[0] + a
}
