// Fixture: malformed escapes are diagnostics themselves and suppress nothing.
pub fn f(o: Option<u32>) -> u32 {
    // ofmf-lint: allow(no-panic-path)
    let a = o.unwrap();
    // ofmf-lint: allow(not-a-rule, "reason text")
    a
}
