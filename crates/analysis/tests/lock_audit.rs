//! End-to-end `run_lock_audit` tests on synthetic mini-workspaces: build a
//! temp `crates/x/src` tree plus runtime dump files in the shim's TSV
//! format, then assert each CI-fail class fires (coverage gap, latent
//! static cycle, unexcused runtime blocking) and that the clean case
//! passes with runtime edges matched to static predictions.

use ofmf_analysis::run_lock_audit;
use std::path::PathBuf;

/// A disposable workspace rooted in the system temp dir; removed on drop.
struct MiniRepo {
    root: PathBuf,
}

impl MiniRepo {
    fn new(tag: &str, lib_rs: &str) -> Self {
        let root = std::env::temp_dir().join(format!("ofmf-audit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src = root.join("crates/x/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
        MiniRepo { root }
    }

    /// Write a runtime dump dir with the given `edges-*.tsv` /
    /// `blocking-*.tsv` rows (already tab-joined lines).
    fn dump(&self, edges: &[&str], blocking: &[&str]) -> PathBuf {
        let dir = self.root.join("lockdump");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("edges-1.tsv"), format!("{}\n", edges.join("\n"))).unwrap();
        std::fs::write(dir.join("blocking-1.tsv"), format!("{}\n", blocking.join("\n"))).unwrap();
        dir
    }
}

impl Drop for MiniRepo {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const LIB: &str = "crates/x/src/lib.rs";

/// alpha at line 7, beta at line 8; one static edge alpha→beta.
const FORWARD_ONLY: &str = r#"
pub struct S {
    alpha: parking_lot::Mutex<u32>,
    beta: parking_lot::Mutex<u32>,
}
impl S {
    pub fn forward(&self) -> u32 {
        let ga = self.alpha.lock();
        let gb = self.beta.lock();
        *ga + *gb
    }
}
"#;

#[test]
fn predicted_runtime_edges_pass() {
    let repo = MiniRepo::new("pass", FORWARD_ONLY);
    let dump = repo.dump(&[&format!("{LIB}\t8\twrite\t{LIB}\t9\twrite")], &[]);
    let report = run_lock_audit(&repo.root, Some(&dump)).unwrap();
    assert_eq!(report.static_sites, 2, "{}", report.render());
    assert_eq!(report.static_edges, 1, "{}", report.render());
    assert_eq!(report.runtime_edges, 1, "{}", report.render());
    assert!(report.pass(), "{}", report.render());
}

#[test]
fn runtime_edge_absent_statically_is_a_coverage_gap() {
    // The dump witnessed beta→alpha but the source only ever takes
    // alpha→beta: the scanner missed an ordering that really executes.
    let repo = MiniRepo::new("gap", FORWARD_ONLY);
    let dump = repo.dump(&[&format!("{LIB}\t9\twrite\t{LIB}\t8\twrite")], &[]);
    let report = run_lock_audit(&repo.root, Some(&dump)).unwrap();
    assert_eq!(report.coverage_gaps.len(), 1, "{}", report.render());
    assert!(!report.pass(), "{}", report.render());
    assert!(report.render().contains("coverage gap"), "{}", report.render());
}

#[test]
fn unknown_runtime_site_is_a_coverage_gap() {
    let repo = MiniRepo::new("site", FORWARD_ONLY);
    let dump = repo.dump(&[&format!("{LIB}\t8\twrite\t{LIB}\t999\twrite")], &[]);
    let report = run_lock_audit(&repo.root, Some(&dump)).unwrap();
    assert!(!report.pass(), "{}", report.render());
    assert!(
        report
            .coverage_gaps
            .iter()
            .any(|g| g.contains("unknown to the static scanner")),
        "{}",
        report.render()
    );
}

#[test]
fn static_only_cycle_is_a_latent_deadlock() {
    // BA in `backward` never executed (no runtime dump rows), but the
    // static graph alone must convict the inversion.
    let src = format!(
        "{}{}",
        FORWARD_ONLY,
        "impl S {\n    pub fn backward(&self) -> u32 {\n        let gb = self.beta.lock();\n        let ga = self.alpha.lock();\n        *ga + *gb\n    }\n}\n"
    );
    let repo = MiniRepo::new("latent", &src);
    let dump = repo.dump(&[&format!("{LIB}\t8\twrite\t{LIB}\t9\twrite")], &[]);
    let report = run_lock_audit(&repo.root, Some(&dump)).unwrap();
    assert_eq!(report.latent_cycles.len(), 1, "{}", report.render());
    assert!(!report.pass(), "{}", report.render());
    assert!(report.render().contains("latent deadlock"), "{}", report.render());
}

#[test]
fn runtime_blocking_needs_an_allowed_static_finding() {
    // fsync under the alpha guard: statically flagged at line 9. Without
    // an allow the runtime row fails the audit; with a reasoned allow the
    // same row is excused because it lands in the same function span.
    let body = |allow: &str| {
        format!(
            r#"
pub struct S {{
    alpha: parking_lot::Mutex<u32>,
}}
impl S {{
    pub fn commit(&self, f: &std::fs::File) {{
        let ga = self.alpha.lock();
        let _ = f.sync_data();{allow}
        drop(ga);
    }}
}}
"#
        )
    };

    let bare = MiniRepo::new("block-bare", &body(""));
    let row = format!("fsync\t{LIB}\t8\talpha");
    let dump = bare.dump(&[], &[&row]);
    let report = run_lock_audit(&bare.root, Some(&dump)).unwrap();
    assert_eq!(report.unexcused_blocking.len(), 1, "{}", report.render());
    assert!(!report.pass(), "{}", report.render());

    let allowed = MiniRepo::new(
        "block-allowed",
        &body(" // ofmf-lint: allow(no-blocking-while-locked, \"single durability point by design\")"),
    );
    let dump = allowed.dump(&[], &[&row]);
    let report = run_lock_audit(&allowed.root, Some(&dump)).unwrap();
    assert_eq!(report.excused_blocking, 1, "{}", report.render());
    assert!(report.pass(), "{}", report.render());
}
