//! Property tests for the scanner's comment/string masking: for ANY
//! concatenation of adversarial segments — raw strings containing `/*`,
//! nested block comments, strings containing `//` and escaped quotes,
//! `#[cfg(test)]` item boundaries — masking must blank exactly the
//! comment/string content (never code), preserve byte-for-byte layout so
//! every downstream position maps back to the source, and classify test
//! lines correctly.

use ofmf_analysis::scan::FileScan;
use proptest::collection::vec;
use proptest::prelude::*;

/// One generated source segment. `kind`:
/// 0 = plain code (carries the `KEEPME` token, outside any test region),
/// 1 = a `#[cfg(test)]` module (its body lines must classify as test),
/// 2 = comment/string content (carries `SECRET`, which must be masked).
#[derive(Debug, Clone)]
struct Segment {
    kind: u8,
    text: String,
}

fn segment() -> impl Strategy<Value = Segment> {
    prop_oneof![
        // Plain code with a survivor token.
        (0u32..100).prop_map(|n| Segment {
            kind: 0,
            text: format!("let KEEPME_{n} = {n};\n"),
        }),
        // A cfg(test) item: every body line is a test line.
        (0u32..100).prop_map(|n| Segment {
            kind: 1,
            text: format!("#[cfg(test)]\nmod t{n} {{\n    fn f{n}() {{ let y = {n}; }}\n}}\n"),
        }),
        // Line comment smuggling string/comment openers.
        Just(Segment {
            kind: 2,
            text: "// SECRET /* r#\" \" unterminated\n".to_string(),
        }),
        // Nested block comment, multi-line.
        Just(Segment {
            kind: 2,
            text: "/* SECRET /* nested SECRET */\n   still SECRET */\n".to_string(),
        }),
        // Plain string containing comment openers and escaped quotes.
        Just(Segment {
            kind: 2,
            text: "let s = \"SECRET // \\\" /* SECRET\";\n".to_string(),
        }),
        // Raw string containing `/*` and a bare quote.
        Just(Segment {
            kind: 2,
            text: "let r = r#\"SECRET /* \" SECRET\"#;\n".to_string(),
        }),
        // Double-hash raw string that embeds a single-hash terminator.
        Just(Segment {
            kind: 2,
            text: "let r2 = r##\"SECRET \"# SECRET\"##;\n".to_string(),
        }),
        // Char literals that look like string openers.
        Just(Segment {
            kind: 2,
            text: "let q = ('\"', '\\''); // SECRET\n".to_string(),
        }),
    ]
}

proptest! {
    #[test]
    fn masking_blanks_content_and_preserves_layout(segs in vec(segment(), 1..24)) {
        let source: String = segs.iter().map(|s| s.text.as_str()).collect();
        let scan = FileScan::new(&source);

        // Byte-for-byte layout: same length, newlines at the same offsets,
        // so every byte position in the masked text maps to the source.
        prop_assert_eq!(scan.masked.len(), source.len());
        for (i, (m, s)) in scan.masked.bytes().zip(source.bytes()).enumerate() {
            prop_assert_eq!(m == b'\n', s == b'\n', "newline mismatch at byte {}", i);
        }

        // Comment and string content never survives masking…
        prop_assert!(!scan.masked.contains("SECRET"), "leaked: {}", scan.masked);
        // …while code outside strings/comments survives verbatim.
        let kept = scan.masked.matches("KEEPME_").count();
        let expected = segs.iter().filter(|s| s.kind == 0).count();
        prop_assert_eq!(kept, expected);

        // Every plain/raw string literal was collected.
        let string_segs = segs
            .iter()
            .filter(|s| s.kind == 2 && (s.text.contains("let s") || s.text.contains("let r")))
            .count();
        prop_assert!(scan.strings.len() >= string_segs,
            "{} strings collected for {} string segments", scan.strings.len(), string_segs);

        // Test-region classification: a line is a test line iff it falls
        // inside a cfg(test) segment's item (the attribute line itself is
        // part of the region).
        let mut line = 1usize;
        for seg in &segs {
            let lines = seg.text.matches('\n').count();
            for l in line..line + lines {
                let inside = scan.is_test_line(l);
                match seg.kind {
                    0 => prop_assert!(!inside, "code line {} misclassified as test", l),
                    // The mod body (every line after the attribute) is
                    // inside the region; the attribute line's own
                    // classification is an implementation detail.
                    1 if l > line => {
                        prop_assert!(inside, "cfg(test) body line {} not classified as test", l);
                    }
                    _ => {}
                }
            }
            line += lines;
        }
    }
}
