//! Fixture tests: each known-bad snippet under `tests/fixtures/` must
//! trigger exactly its rule, valid `allow` escapes must suppress, and
//! malformed or dead escapes must themselves be reported.

use ofmf_analysis::{Analysis, Diagnostic};

/// Lint a single fixture under a virtual repo path.
fn lint_one(path: &str, source: &str) -> Vec<Diagnostic> {
    let mut a = Analysis::new();
    a.add_rust_file(path, source);
    a.finish()
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn no_panic_path_fixture_triggers_only_that_rule() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/no_panic_path.rs"));
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "no-panic-path"), "{diags:?}");
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![3, 4, 6, 8], "unwrap, expect, panic!, xs[0]");
}

#[test]
fn no_panic_path_only_applies_to_production_crates() {
    // Same panicking source outside the production-crate scope: clean.
    let diags = lint_one("crates/bench/src/fixture.rs", include_str!("fixtures/no_panic_path.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn std_sync_fixture_triggers_only_that_rule() {
    let diags = lint_one("crates/fabric/src/fixture.rs", include_str!("fixtures/std_sync.rs"));
    assert_eq!(rules_of(&diags), vec!["no-std-sync", "no-std-sync"], "{diags:?}");
    assert_eq!(diags[0].line, 2, "use std::sync::Mutex import");
    assert_eq!(diags[1].line, 5, "direct std::sync::RwLock use");
}

#[test]
fn obs_names_fixture_triggers_only_that_rule() {
    let diags = lint_one("crates/obs/src/fixture.rs", include_str!("fixtures/obs_names.rs"));
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "obs-name-convention"), "{diags:?}");
    assert!(diags[0].message.contains("ofmf."), "bad prefix: {}", diags[0].message);
    assert!(diags[1].message.contains("segment"), "too short: {}", diags[1].message);
    assert!(
        diags[2].message.contains("already defined"),
        "dup: {}",
        diags[2].message
    );
}

#[test]
fn span_names_fixture_triggers_only_that_rule() {
    let diags = lint_one("crates/demo/src/fixture.rs", include_str!("fixtures/span_names.rs"));
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "span-name-convention"), "{diags:?}");
    assert!(diags[0].message.contains("ofmf."), "bad prefix: {}", diags[0].message);
    assert!(diags[1].message.contains("segment"), "too short: {}", diags[1].message);
    assert!(diags[2].message.contains("already opened"), "dup: {}", diags[2].message);
    // `my_child_span(` and the #[cfg(test)] span trigger nothing.
    assert_eq!(diags[2].line, 8, "{diags:?}");
}

#[test]
fn wal_facade_fixture_flags_direct_file_io_in_scoped_crates() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/wal_facade.rs"));
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "wal-write-facade"), "{diags:?}");
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![6, 10, 14], "fs::write, File::create, OpenOptions::new");
    // The #[cfg(test)] fs::write and the fsync sites (out of wal-crate scope)
    // trigger nothing.
}

#[test]
fn wal_crate_fsync_sites_must_carry_a_policy_tag() {
    let diags = lint_one("crates/wal/src/fixture.rs", include_str!("fixtures/wal_facade.rs"));
    // Inside crates/wal/ the facade patterns are the implementation, not a
    // bypass; only the untagged sync_data remains.
    assert_eq!(rules_of(&diags), vec!["wal-write-facade"], "{diags:?}");
    assert_eq!(diags[0].line, 23, "untagged sync_data; tagged sync_all at 19 is clean");
    assert!(diags[0].message.contains("ofmf-wal: policy"), "{}", diags[0].message);
}

#[test]
fn wal_facade_only_applies_to_durable_control_plane_crates() {
    let diags = lint_one("crates/bench/src/fixture.rs", include_str!("fixtures/wal_facade.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn readme_references_resolve_against_span_names_too() {
    let mut a = Analysis::new();
    a.add_rust_file(
        "crates/demo/src/spans.rs",
        "pub fn f() { let _s = ofmf_obs::root_span(\"ofmf.demo.request\"); }\n",
    );
    a.add_readme("README.md", "Every request runs under an `ofmf.demo.request` span.\n");
    let diags = a.finish();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn atomic_ordering_fixture_triggers_only_that_rule() {
    let diags = lint_one(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/atomic_ordering.rs"),
    );
    assert_eq!(
        rules_of(&diags),
        vec!["atomic-ordering-audit", "atomic-ordering-audit"],
        "{diags:?}"
    );
    assert_eq!(diags[0].line, 5, "store");
    assert_eq!(diags[1].line, 6, "load");
}

#[test]
fn syscall_facade_fixture_triggers_only_that_rule() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/syscall_facade.rs"));
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "syscall-facade"), "{diags:?}");
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 6, 7], "allow(unsafe_code), unsafe block, asm!");
    // The #[cfg(test)] unsafe block triggers nothing.
}

#[test]
fn syscall_facade_file_itself_is_exempt() {
    let diags = lint_one(
        "crates/rest/src/event_loop/sys.rs",
        include_str!("fixtures/syscall_facade.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn valid_allow_suppresses_the_finding() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/allow_ok.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn malformed_and_unknown_allows_are_reported_and_suppress_nothing() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/allow_bad.rs"));
    let mut rules = rules_of(&diags);
    rules.sort_unstable();
    assert_eq!(rules, vec!["bad-allow", "bad-allow", "no-panic-path"], "{diags:?}");
    assert!(
        diags.iter().any(|d| d.rule == "no-panic-path" && d.line == 4),
        "reason-less allow must not suppress the unwrap: {diags:?}"
    );
}

#[test]
fn dead_allow_is_reported_as_unused() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/allow_unused.rs"));
    assert_eq!(rules_of(&diags), vec!["unused-allow"], "{diags:?}");
}

#[test]
fn clean_fixture_has_no_findings_and_test_code_is_exempt() {
    let diags = lint_one("crates/core/src/fixture.rs", include_str!("fixtures/clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cli_and_readme_references_must_resolve_against_definitions() {
    let mut a = Analysis::new();
    a.add_rust_file(
        "crates/obs/src/defs.rs",
        r#"
pub fn setup() {
    let _c = ofmf_obs::counter("ofmf.demo.requests.total");
    let _h = ofmf_obs::histogram("ofmf.demo.latency_ns");
    let _t = ofmf_obs::counter(&format!("ofmf.demo.{kind}.errors"));
}
"#,
    );
    a.add_rust_file(
        "src/bin/ofmf_cli.rs",
        r#"
fn stats() {
    metric("ofmf.demo.requests.total");
    metric("ofmf.demo.latency_ns.p99");
    metric("ofmf.demo.timeout.errors");
    metric("ofmf.demo.requests.missing");
}
"#,
    );
    a.add_readme(
        "README.md",
        "The `ofmf.demo.latency_ns` histogram and `ofmf.nothing.defines.this` id.\n",
    );
    let diags = a.finish();
    // Exactly the two unresolvable references: literal + histogram-suffix +
    // template references all resolve; the missing CLI and README ids fail.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "obs-name-convention"), "{diags:?}");
    assert!(
        diags
            .iter()
            .any(|d| d.file == "src/bin/ofmf_cli.rs" && d.message.contains("ofmf.demo.requests.missing")),
        "{diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.file == "README.md" && d.message.contains("ofmf.nothing.defines.this")),
        "{diags:?}"
    );
}
