//! Static lock-graph tests: the AB/BA fixture pair the runtime `lockcheck`
//! shim cannot catch when only one order executes, plus the scope- and
//! resolution-precision rules the whole-workspace graph depends on
//! (statement-scoped chained guards, explicit `drop`, typed receivers,
//! closure-argument gating, bare-call restriction).

use ofmf_analysis::lockgraph::LockModel;
use ofmf_analysis::{Analysis, Diagnostic};
use std::collections::HashSet;

fn lint_one(path: &str, source: &str) -> Vec<Diagnostic> {
    let mut a = Analysis::new();
    a.add_rust_file(path, source);
    a.finish()
}

fn model_of(path: &str, source: &str) -> LockModel {
    let files = vec![(path.to_string(), ofmf_analysis::scan::FileScan::new(source))];
    LockModel::build(&files, &HashSet::new())
}

/// `(from-key, to-key)` pairs of every static edge.
fn edge_keys(m: &LockModel) -> Vec<(String, String)> {
    m.edges
        .iter()
        .map(|e| (m.sites[e.from].key.clone(), m.sites[e.to].key.clone()))
        .collect()
}

const FIXTURE_PATH: &str = "crates/fabric/src/fixture.rs";

// ---------------------------------------------------------------------------
// The acceptance fixture: AB in one function, BA in another. A single test
// run executes each function on its own thread-interleaving; the runtime
// graph only ever sees the orders that actually ran, but the static pass
// must flag the cycle from the source alone.
// ---------------------------------------------------------------------------

const AB_BA: &str = r#"
pub struct S {
    alpha: parking_lot::Mutex<u32>,
    beta: parking_lot::Mutex<u32>,
}
impl S {
    pub fn forward(&self) -> u32 {
        let ga = self.alpha.lock();
        let gb = self.beta.lock();
        *ga + *gb
    }
    pub fn backward(&self) -> u32 {
        let gb = self.beta.lock();
        let ga = self.alpha.lock();
        *ga + *gb
    }
}
"#;

#[test]
fn ab_ba_in_separate_functions_is_caught_statically() {
    let diags = lint_one(FIXTURE_PATH, AB_BA);
    assert!(
        diags.iter().all(|d| d.rule == "lock-discipline"),
        "only lock-discipline expected: {diags:?}"
    );
    // One diagnostic per backing edge of the cycle, anchored at each
    // inversion point, naming both sites and both keys.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(
        diags.iter().any(|d| d.line == 9),
        "beta-after-alpha inversion: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.line == 14),
        "alpha-after-beta inversion: {diags:?}"
    );
    for d in &diags {
        assert!(
            d.message.contains("alpha") && d.message.contains("beta"),
            "{}",
            d.message
        );
        assert!(d.message.contains("potential-deadlock cycle"), "{}", d.message);
    }
}

#[test]
fn consistent_order_is_clean() {
    let both_forward = AB_BA.replace(
        "let gb = self.beta.lock();\n        let ga = self.alpha.lock();",
        "let ga = self.alpha.lock();\n        let gb = self.beta.lock();",
    );
    assert_ne!(both_forward, AB_BA, "replacement must hit");
    let diags = lint_one(FIXTURE_PATH, &both_forward);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// Guard-scope precision
// ---------------------------------------------------------------------------

#[test]
fn chained_acquisition_is_statement_scoped() {
    // `self.alpha.lock().clone()` binds the clone, not the guard: the
    // temporary dies at the `;`, so the later beta acquisition overlaps
    // nothing and the reversed pair in `backward` makes no cycle.
    let src = r#"
pub struct S { alpha: parking_lot::Mutex<u32>, beta: parking_lot::Mutex<u32> }
impl S {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().clone();
        let b = self.beta.lock().clone();
        a + b
    }
    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().clone();
        let a = self.alpha.lock().clone();
        a + b
    }
}
"#;
    let diags = lint_one(FIXTURE_PATH, src);
    assert!(diags.is_empty(), "{diags:?}");
    assert!(edge_keys(&model_of(FIXTURE_PATH, src)).is_empty());
}

#[test]
fn statement_level_drop_releases_the_guard() {
    let src = r#"
pub struct S { alpha: parking_lot::Mutex<u32>, beta: parking_lot::Mutex<u32> }
impl S {
    pub fn forward(&self) -> u32 {
        let ga = self.alpha.lock();
        let v = *ga;
        drop(ga);
        let gb = self.beta.lock();
        v + *gb
    }
    pub fn backward(&self) -> u32 {
        let gb = self.beta.lock();
        let ga = self.alpha.lock();
        *ga + *gb
    }
}
"#;
    // No alpha→beta edge survives the drop, so BA alone is not a cycle.
    let diags = lint_one(FIXTURE_PATH, src);
    assert!(diags.is_empty(), "{diags:?}");
    let keys = edge_keys(&model_of(FIXTURE_PATH, src));
    assert_eq!(keys.len(), 1, "only beta→alpha: {keys:?}");
}

#[test]
fn conditional_drop_keeps_the_guard_held() {
    // The drop inside the `if` arm does not run on the fall-through path,
    // so the conservative scope stands and the AB/BA cycle is still real.
    let src = r#"
pub struct S { alpha: parking_lot::Mutex<u32>, beta: parking_lot::Mutex<u32> }
impl S {
    pub fn forward(&self, bail: bool) -> u32 {
        let ga = self.alpha.lock();
        if bail {
            drop(ga);
            return 0;
        }
        let gb = self.beta.lock();
        *ga + *gb
    }
    pub fn backward(&self) -> u32 {
        let gb = self.beta.lock();
        let ga = self.alpha.lock();
        *ga + *gb
    }
}
"#;
    let diags = lint_one(FIXTURE_PATH, src);
    assert_eq!(diags.len(), 2, "cycle must survive a conditional drop: {diags:?}");
}

// ---------------------------------------------------------------------------
// Call-resolution precision
// ---------------------------------------------------------------------------

#[test]
fn interprocedural_blocking_reports_callee_site_with_caller_holds() {
    // `flush` holds nothing itself; the fsync only becomes a finding
    // through the caller that invokes it under a lock — reported at the
    // callee's `sync_data` line.
    let src = r#"
pub struct S { alpha: parking_lot::Mutex<std::fs::File> }
impl S {
    fn flush(&self, f: &std::fs::File) -> std::io::Result<()> {
        f.sync_data()
    }
    pub fn commit(&self) -> std::io::Result<()> {
        let g = self.alpha.lock();
        self.flush(&g)
    }
}
"#;
    let diags = lint_one(FIXTURE_PATH, src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "no-blocking-while-locked");
    assert_eq!(diags[0].line, 5, "anchored at the callee's sync_data: {diags:?}");
    assert!(diags[0].message.contains("alpha"), "{}", diags[0].message);
}

#[test]
fn typed_parameter_restricts_resolution_to_that_impl() {
    // Both types define `poke`; the caller's parameter is declared
    // `&Quiet`, so only `Quiet::poke` (no acquisition) may be the target —
    // `Noisy::poke`'s beta acquisition must not leak into the caller's
    // held-edge set.
    let src = r#"
pub struct Quiet { n: u32 }
impl Quiet {
    pub fn poke(&self, v: u32) -> u32 { self.n + v }
}
pub struct Noisy { beta: parking_lot::Mutex<u32> }
impl Noisy {
    pub fn poke(&self, v: u32) -> u32 { *self.beta.lock() + v }
}
pub struct S { alpha: parking_lot::Mutex<u32> }
impl S {
    pub fn forward(&self, q: &Quiet) -> u32 {
        let ga = self.alpha.lock();
        q.poke(*ga)
    }
    pub fn backward(&self, n: &Noisy) -> u32 {
        let gb = n.beta.lock();
        let ga = self.alpha.lock();
        *ga + *gb
    }
}
"#;
    // Resolving `q.poke` to Noisy::poke would fabricate alpha→beta and
    // close a cycle against `backward`'s beta→alpha.
    let diags = lint_one(FIXTURE_PATH, src);
    assert!(diags.is_empty(), "typed param must prevent the false cycle: {diags:?}");
}

#[test]
fn closure_argument_calls_need_closure_capable_params() {
    // `.find(|x| …)` is an iterator adapter; a same-named workspace fn
    // taking plain data must not become the target (that edge would chain
    // alpha→beta through `Store::find`).
    let src = r#"
pub struct Store { beta: parking_lot::Mutex<Vec<u32>> }
impl Store {
    pub fn find(&self, v: u32) -> bool { self.beta.lock().contains(&v) }
}
pub struct S { alpha: parking_lot::Mutex<Vec<u32>> }
impl S {
    pub fn forward(&self) -> Option<u32> {
        let ga = self.alpha.lock();
        ga.iter().find(|x| **x > 1).copied()
    }
}
"#;
    let m = model_of(FIXTURE_PATH, src);
    assert!(
        edge_keys(&m).is_empty(),
        "iterator adapter resolved into Store::find: {:?}",
        edge_keys(&m)
    );
}

#[test]
fn bare_call_never_resolves_to_cross_file_method() {
    // `helper(1, 2)` in file A can only be a free function or a same-file
    // item; `Other::helper` (a `&self` method in file B, beta-acquiring)
    // is not in scope under bare-call syntax.
    let file_a = r#"
pub struct S { alpha: parking_lot::Mutex<u32> }
impl S {
    pub fn forward(&self) -> u32 {
        let ga = self.alpha.lock();
        helper(*ga, 1)
    }
}
fn helper(a: u32, b: u32) -> u32 { a + b }
"#;
    let file_b = r#"
pub struct Other { beta: parking_lot::Mutex<u32> }
impl Other {
    pub fn helper(&self, v: u32, w: u32) -> u32 { *self.beta.lock() + v + w }
}
"#;
    let files = vec![
        (
            "crates/fabric/src/a.rs".to_string(),
            ofmf_analysis::scan::FileScan::new(file_a),
        ),
        (
            "crates/fabric/src/b.rs".to_string(),
            ofmf_analysis::scan::FileScan::new(file_b),
        ),
    ];
    let m = LockModel::build(&files, &HashSet::new());
    assert!(edge_keys(&m).is_empty(), "{:?}", edge_keys(&m));
}

#[test]
fn generic_parameter_list_does_not_shadow_the_params() {
    // `fn for_each<F: FnMut(&u32)>(&self, f: F)` — the `FnMut(…)` inside
    // the generics must not be taken for the parameter list, or `f` stops
    // being a parameter and its invocation becomes indirect dispatch.
    let src = r#"
pub struct S { alpha: parking_lot::Mutex<Vec<u32>> }
impl S {
    pub fn for_each<F: FnMut(&u32)>(&self, mut f: F) {
        let ga = self.alpha.lock();
        for v in ga.iter() {
            f(v);
        }
    }
}
"#;
    let m = model_of(FIXTURE_PATH, src);
    assert_eq!(m.sites.len(), 1);
    assert!(edge_keys(&m).is_empty(), "{:?}", edge_keys(&m));
    assert!(m.blocking.is_empty(), "{:?}", m.blocking);
}
