//! Smoke-scale reproduction checks: the interference study's orderings and
//! claims hold end-to-end, deterministically, at test-friendly sizes.

use cluster_sim::experiment::{run, run_one_via_wlm, ExperimentClass, ExperimentPlan, Layout};
use cluster_sim::node::NodeSpec;
use cluster_sim::workload::hpl::TABLE_II;
use cluster_sim::workload::ior::IorParams;

#[test]
fn class_orderings_hold_at_smoke_scale() {
    let spec = NodeSpec::thunderx2();
    let mut plan = ExperimentPlan::smoke(2026);
    plan.node_counts = vec![4, 16];
    let results = run(&plan, &spec);
    for &n in &plan.node_counts {
        let mean = |c: ExperimentClass| results.iter().find(|r| r.class == c && r.n == n).unwrap().runtime.mean;
        let lustre = mean(ExperimentClass::MatchingLustre);
        let hpl_only = mean(ExperimentClass::HplOnly);
        let single = mean(ExperimentClass::SingleBeeond);
        let matching = mean(ExperimentClass::MatchingBeeond);
        assert!(lustre < hpl_only, "n={n}: daemon-free is fastest");
        assert!(hpl_only < single, "n={n}: active IOR beats idle daemons");
        assert!(single < matching, "n={n}: matching IOR is worst");
    }
}

#[test]
fn full_sweep_is_deterministic_across_runs() {
    let spec = NodeSpec::thunderx2();
    let mut plan = ExperimentPlan::smoke(7);
    plan.node_counts = vec![4];
    let a = run(&plan, &spec);
    let b = run(&plan, &spec);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.runtime, y.runtime, "{:?}@{}", x.class, x.n);
    }
}

#[test]
fn hpl_table_constants_are_embedded() {
    // Table II is carried verbatim for cross-checking.
    assert_eq!(TABLE_II[0].n, 91048);
    assert_eq!(TABLE_II[7].n, 458853);
    assert_eq!((TABLE_II[7].p, TABLE_II[7].q), (112, 64));
}

#[test]
fn wlm_integration_covers_every_class() {
    let spec = NodeSpec::thunderx2();
    for class in ExperimentClass::ALL {
        let r = run_one_via_wlm(class, 2, &spec, 11);
        assert!(r.payload_s > 0.0, "{class:?}");
        assert!(r.total_s > r.payload_s, "{class:?}: hooks add occupancy");
        if class.loads_beeond() {
            assert!(r.prolog_s < 3.0, "{class:?}: assembly budget");
            assert!(r.epilog_s < 6.0, "{class:?}: teardown budget");
        }
    }
}

#[test]
fn layouts_and_noise_are_serializable() {
    // Harnesses serialize results (serde) — the whole chain must round-trip
    // to JSON without panicking.
    let layout = Layout::build(ExperimentClass::MatchingBeeondNoMeta, 8);
    let j = serde_json::to_string(&layout).unwrap();
    assert!(j.contains("Separator"));
    let spec = NodeSpec::thunderx2();
    let mut plan = ExperimentPlan::smoke(1);
    plan.node_counts = vec![1];
    plan.classes = vec![ExperimentClass::HplOnly];
    let results = run(&plan, &spec);
    let j = serde_json::to_string(&results).unwrap();
    assert!(j.contains("runtime"));
    let _ = IorParams::default().command_line();
}
