//! Observability over the wire: the full stack (agents → OFMF → REST) runs
//! in-process, traffic flows over real sockets, and the Redfish-native
//! export under `/redfish/v1/Managers/OFMF` must report live, non-zero
//! instruments for that traffic — including complete span trees in the
//! flight recorder's `LogServices/Tracing` export.

use composer::{Composer, Strategy};
use ofmf_repro::{demo_rig, ComposerBridge};
use ofmf_rest::{HttpClient, RestServer, Router};
use serde_json::{json, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Pull `MetricId == id` out of a live report body, parsed as f64.
fn metric(report: &Value, id: &str) -> Option<f64> {
    report["MetricValues"]
        .as_array()?
        .iter()
        .find(|v| v["MetricId"] == id)?["MetricValue"]
        .as_str()?
        .parse()
        .ok()
}

#[test]
fn manager_reports_live_nonzero_counters() {
    let rig = demo_rig(601);
    let router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 2).unwrap();
    let mut http = HttpClient::new(server.addr());

    // Generate traffic the instruments must account for: three 200s and
    // one 404.
    assert_eq!(http.get("/redfish/v1").unwrap().status, 200);
    assert_eq!(http.get("/redfish/v1/Systems").unwrap().status, 200);
    assert_eq!(http.get("/redfish/v1/Systems/cn00").unwrap().status, 200);
    assert_eq!(http.get("/redfish/v1/Systems/nope").unwrap().status, 404);

    // The manager document carries a live Oem summary.
    let resp = http.get("/redfish/v1/Managers/OFMF").unwrap();
    assert_eq!(resp.status, 200);
    let doc = resp.json().unwrap();
    let obs = &doc["Oem"]["OFMF"]["Observability"];
    assert_eq!(obs["Enabled"], true);
    assert!(obs["RestRequests"].as_u64().unwrap() >= 4, "{obs}");
    let reports = obs["MetricReports"]["@odata.id"].as_str().unwrap().to_string();

    // The collection lists the live report; the report carries non-zero
    // values for the traffic above.
    let col = http.get(&reports).unwrap();
    assert_eq!(col.status, 200);
    let col = col.json().unwrap();
    let live = col["Members"][0]["@odata.id"].as_str().unwrap().to_string();
    let report = http.get(&live).unwrap();
    assert_eq!(report.status, 200);
    let report = report.json().unwrap();
    assert_eq!(report["@odata.type"], "#MetricReport.v1_5_0.MetricReport");
    assert!(metric(&report, "ofmf.rest.get.requests").unwrap() >= 4.0);
    assert!(metric(&report, "ofmf.rest.status.2xx").unwrap() >= 3.0);
    assert!(metric(&report, "ofmf.rest.status.4xx").unwrap() >= 1.0);
    assert!(metric(&report, "ofmf.rest.accepted.total").unwrap() >= 1.0);
    // The GET latency histogram saw every request.
    assert!(metric(&report, "ofmf.rest.get.latency_ns.count").unwrap() >= 4.0);
    assert!(metric(&report, "ofmf.rest.get.latency_ns.p99").unwrap() > 0.0);

    server.shutdown();
}

/// Acceptance: one composed system over two fabrics yields ONE span tree
/// covering rest → composer → supervisor → agent, retrievable over Redfish
/// by the trace id the response handed back.
#[test]
fn compose_over_rest_yields_one_span_tree_across_all_layers() {
    let rig = demo_rig(603);
    let bridge = ComposerBridge::new(Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit));
    let router = Router::new(Arc::clone(&rig.ofmf), false).with_compose_service(Arc::new(bridge));
    let server = RestServer::start("127.0.0.1:0", Arc::new(router), 2).unwrap();
    let mut http = HttpClient::new(server.addr());

    // Memory (CXL0) + storage (NVME0): the composition spans two fabrics.
    let resp = http
        .post(
            "/redfish/v1/CompositionService/Actions/CompositionService.Compose",
            &json!({
                "Name": "traced-e2e",
                "Cores": 8,
                "LocalMemoryGiB": 8,
                "FabricMemoryMiB": 512,
                "StorageBytes": 1u64 << 30,
            }),
        )
        .unwrap();
    assert_eq!(resp.status, 201, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.header("location").unwrap(), "/redfish/v1/Systems/traced-e2e");
    let trace_id = resp.header("x-ofmf-traceid").expect("trace id on the response");

    // The flight recorder serves the whole tree as a Redfish LogEntry.
    let entry = http
        .get(&format!(
            "/redfish/v1/Managers/OFMF/LogServices/Tracing/Entries/{trace_id}"
        ))
        .unwrap();
    assert_eq!(entry.status, 200);
    let entry = entry.json().unwrap();
    assert_eq!(entry["@odata.type"], "#LogEntry.v1_15_0.LogEntry");
    let trace = &entry["Oem"]["OFMF"]["Trace"];
    assert_eq!(trace["TraceId"].as_u64().unwrap().to_string(), trace_id);
    assert_eq!(trace["Route"], "Post /redfish/v1/CompositionService/*");
    let spans = trace["Spans"].as_array().unwrap();

    // One tree: exactly one root, and every other span's parent exists.
    let ids: Vec<u64> = spans.iter().map(|s| s["Id"].as_u64().unwrap()).collect();
    let roots: Vec<&Value> = spans.iter().filter(|s| s["ParentId"].as_u64() == Some(0)).collect();
    assert_eq!(roots.len(), 1, "single root");
    assert_eq!(roots[0]["Name"], "ofmf.rest.request");
    for s in spans {
        let p = s["ParentId"].as_u64().unwrap();
        assert!(p == 0 || ids.contains(&p), "dangling parent in {s}");
    }

    // All four layers are present in the same tree.
    let names: Vec<&str> = spans.iter().filter_map(|s| s["Name"].as_str()).collect();
    for required in [
        "ofmf.rest.request",
        "ofmf.composer.compose",
        "ofmf.composer.bind",
        "ofmf.supervisor.dispatch",
        "ofmf.agents.op",
        "ofmf.tree.post",
    ] {
        assert!(names.contains(&required), "{required} missing from {names:?}");
    }

    // Both fabrics appear as bind children.
    let bind_fabrics: Vec<&str> = spans
        .iter()
        .filter(|s| s["Name"] == "ofmf.composer.bind")
        .filter_map(|s| s["Annotations"].as_array()?.iter().find(|kv| kv[0] == "fabric")?[1].as_str())
        .collect();
    assert!(
        bind_fabrics.contains(&"CXL0") && bind_fabrics.contains(&"NVME0"),
        "{bind_fabrics:?}"
    );

    // The Tracing collection lists the entry.
    let col = http
        .get("/redfish/v1/Managers/OFMF/LogServices/Tracing/Entries")
        .unwrap();
    assert_eq!(col.status, 200);
    let col = col.json().unwrap();
    let members: Vec<&str> = col["Members"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|m| m["@odata.id"].as_str())
        .collect();
    assert!(
        members.iter().any(|m| m.ends_with(&format!("/{trace_id}"))),
        "{members:?}"
    );

    server.shutdown();
}

#[test]
fn event_ring_is_browsable_as_log_entries() {
    let rig = demo_rig(602);
    let router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 2).unwrap();

    // A malformed request is refused by the parser and lands in the ring.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"BOGUS-WIRE-DATA\r\n\r\n").unwrap();
    let mut sink = Vec::new();
    let _ = raw.read_to_end(&mut sink);
    drop(raw);

    let mut http = HttpClient::new(server.addr());
    let entries = http
        .get("/redfish/v1/Managers/OFMF/LogServices/Observability/Entries")
        .unwrap();
    assert_eq!(entries.status, 200);
    let entries = entries.json().unwrap();
    let members = entries["Members"].as_array().unwrap();
    assert!(!members.is_empty(), "parse rejection should be ring-visible");

    // Each member resolves to a LogEntry; at least one mentions the
    // rejected request.
    let mut saw_rejection = false;
    for m in members {
        let path = m["@odata.id"].as_str().unwrap().to_string();
        let entry = http.get(&path).unwrap();
        assert_eq!(entry.status, 200, "{path}");
        let entry = entry.json().unwrap();
        assert_eq!(entry["@odata.type"], "#LogEntry.v1_15_0.LogEntry");
        if entry["Message"].as_str().unwrap_or("").contains("request rejected") {
            saw_rejection = true;
        }
    }
    assert!(saw_rejection);

    server.shutdown();
}
