//! Full-stack integration: agents → OFMF → Composability Manager → REST,
//! all live in one process, observed over real sockets.

use composer::{Composer, CompositionRequest, Strategy};
use ofmf_repro::demo_rig;
use ofmf_rest::{HttpClient, RestServer, Router};
use serde_json::json;
use std::sync::Arc;

#[test]
fn compose_is_visible_over_http() {
    let rig = demo_rig(301);
    let router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 4).unwrap();
    let mut http = HttpClient::new(server.addr());

    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::BestFit);
    let composed = composer
        .compose(
            &CompositionRequest::compute_only("webjob", 32, 64)
                .with_fabric_memory_mib(32 * 1024)
                .with_gpus(1)
                .with_storage_bytes(1 << 38),
        )
        .unwrap();

    // The composed system is a first-class Redfish resource over the wire.
    let resp = http.get("/redfish/v1/Systems/webjob").unwrap();
    assert_eq!(resp.status, 200);
    let doc = resp.json().unwrap();
    assert_eq!(doc["SystemType"], "Composed");
    // Every resource block link resolves over HTTP too.
    for link in doc["Links"]["ResourceBlocks"].as_array().unwrap() {
        let path = link["@odata.id"].as_str().unwrap();
        assert_eq!(http.get(path).unwrap().status, 200, "{path}");
    }

    // Decompose; the resource disappears from the wire.
    composer.decompose(&composed.system).unwrap();
    assert_eq!(http.get("/redfish/v1/Systems/webjob").unwrap().status, 404);
    server.shutdown();
}

#[test]
fn http_composition_and_composer_coexist() {
    // A client composing raw zones/connections over HTTP shares pools with
    // the Composability Manager; accounting must stay consistent.
    let rig = demo_rig(302);
    let router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 2).unwrap();
    let mut http = HttpClient::new(server.addr());
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);

    // HTTP client carves 1 GiB directly.
    let zone = http
        .post(
            "/redfish/v1/Fabrics/CXL0/Zones",
            &json!({"Id": "manual", "Links": {"Endpoints": [
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn03-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
            ]}}),
        )
        .unwrap();
    assert_eq!(zone.status, 201);
    let conn = http
        .post(
            "/redfish/v1/Fabrics/CXL0/Connections",
            &json!({
                "Id": "manual",
                "Zone": {"@odata.id": "/redfish/v1/Fabrics/CXL0/Zones/manual"},
                "Size": 1024,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn03-ep"}],
                    "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
                }
            }),
        )
        .unwrap();
    assert_eq!(conn.status, 201);

    // The composer's inventory sees the manual carve.
    let inv = composer.inventory();
    assert_eq!(inv.free_memory_mib(), (2 << 20) - 1024);

    // The composer can still use the remaining capacity.
    let composed = composer
        .compose(&CompositionRequest::compute_only("shared", 8, 8).with_fabric_memory_mib((1 << 20) - 1024))
        .unwrap();
    assert_eq!(composed.bound_memory_mib(), (1 << 20) - 1024);
    server.shutdown();
}

#[test]
fn telemetry_report_visible_over_http() {
    let rig = demo_rig(303);
    let router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 2).unwrap();
    let mut http = HttpClient::new(server.addr());

    rig.ofmf.poll(); // one telemetry sweep from all three agents
    let rid = rig
        .ofmf
        .telemetry
        .generate_report(&rig.ofmf.registry, &rig.ofmf.events)
        .unwrap();

    let resp = http.get(rid.as_str()).unwrap();
    assert_eq!(resp.status, 200);
    let doc = resp.json().unwrap();
    let values = doc["MetricValues"].as_array().unwrap();
    assert!(!values.is_empty());
    // Samples cover all three fabrics' resources.
    let props: Vec<&str> = values.iter().filter_map(|v| v["MetricProperty"].as_str()).collect();
    assert!(props.iter().any(|p| p.contains("/Fabrics/CXL0/")));
    assert!(props
        .iter()
        .any(|p| p.contains("/Fabrics/NVME0/") || p.contains("nvme")));
    server.shutdown();
}

#[test]
fn event_log_of_a_full_composition_lifecycle() {
    let rig = demo_rig(304);
    let (_, rx) = rig
        .ofmf
        .events
        .subscribe(&rig.ofmf.registry, "channel://audit", vec![], vec![])
        .unwrap();
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    let composed = composer
        .compose(&CompositionRequest::compute_only("audited", 8, 8).with_fabric_memory_mib(2048))
        .unwrap();
    composer.grow_memory(&composed.system, 1024).unwrap();
    composer.decompose(&composed.system).unwrap();

    let mut messages = Vec::new();
    while let Ok(batch) = rx.try_recv() {
        for e in batch.events.iter() {
            messages.push(e.message.clone());
        }
    }
    // The audit trail tells the whole story in order.
    let joined = messages.join("\n");
    assert!(joined.contains("zone created"));
    assert!(joined.contains("connection established"));
    assert!(joined.contains("composed"), "{joined}");
    assert!(joined.contains("grew fabric memory"));
    assert!(joined.contains("decomposed"));
}

#[test]
fn tree_has_no_dangling_links_through_lifecycle() {
    let rig = demo_rig(305);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::TopologyAware);
    assert!(rig.ofmf.registry.dangling_links().is_empty(), "after boot");
    let composed = composer
        .compose(
            &CompositionRequest::compute_only("linkcheck", 8, 8)
                .with_fabric_memory_mib(4096)
                .with_gpus(2)
                .with_storage_bytes(1 << 33),
        )
        .unwrap();
    assert!(rig.ofmf.registry.dangling_links().is_empty(), "while composed");
    composer.decompose(&composed.system).unwrap();
    assert!(rig.ofmf.registry.dangling_links().is_empty(), "after decompose");
}
