//! Failure injection across the stack: agent-process death, fabric
//! partitions, slow subscribers, malformed wire input, link flap storms.

use composer::{Composer, CompositionRequest, Strategy};
use fabric_sim::failure::Fault;
use fabric_sim::ids::{DeviceId, LinkId, SwitchId};
use ofmf_core::ofmf::MAX_MISSED_HEARTBEATS;
use ofmf_repro::demo_rig;
use ofmf_rest::{HttpClient, RestServer, Router};
use redfish_model::odata::ODataId;
use redfish_model::RedfishError;
use std::sync::Arc;

#[test]
fn agent_process_death_marks_fabric_unavailable_and_refuses_ops() {
    let rig = demo_rig(401);
    rig.cxl.set_process_health(false);
    for _ in 0..MAX_MISSED_HEARTBEATS {
        rig.ofmf.poll();
    }
    assert!(!rig.ofmf.agent_alive("CXL0"));
    // The fabric resource reflects it.
    let fabric = rig
        .ofmf
        .registry
        .get(&ODataId::new("/redfish/v1/Fabrics/CXL0"))
        .unwrap();
    assert_eq!(fabric.body["Status"]["State"], "UnavailableOffline");
    // Compositions that need CXL memory now fail with 503 from the agent
    // layer (surfaced as insufficient resources when no pool is usable).
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    let err = composer
        .compose(&CompositionRequest::compute_only("doomed", 8, 8).with_fabric_memory_mib(1024))
        .unwrap_err();
    assert!(
        matches!(
            err,
            RedfishError::AgentUnavailable(_) | RedfishError::InsufficientResources(_)
        ),
        "{err}"
    );
    // Other fabrics keep working: storage-only composition succeeds.
    let ok = composer
        .compose(&CompositionRequest::compute_only("survivor", 8, 8).with_storage_bytes(1 << 30))
        .unwrap();
    assert_eq!(ok.bound_storage_bytes(), 1 << 30);

    // Recovery restores service.
    rig.cxl.set_process_health(true);
    rig.ofmf.poll();
    assert!(rig.ofmf.agent_alive("CXL0"));
    composer
        .compose(&CompositionRequest::compute_only("recovered", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
}

#[test]
fn link_flap_storm_keeps_state_consistent() {
    let rig = demo_rig(402);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    let composed = composer
        .compose(&CompositionRequest::compute_only("flapper", 8, 8).with_fabric_memory_mib(2048))
        .unwrap();

    // Flap every link on the CXL fabric repeatedly.
    let n_links = 4 + 4 + 2 * 2; // access links + trunks in a 2x2 leaf-spine with 6 devices
    for round in 0..10 {
        for l in 0..n_links {
            rig.cxl.inject_fault(Fault::LinkDown(LinkId(l)));
        }
        rig.ofmf.poll();
        for l in 0..n_links {
            rig.cxl.inject_fault(Fault::LinkUp(LinkId(l)));
        }
        rig.ofmf.poll();
        let _ = round;
    }
    composer.reconcile();

    // Whatever happened, the books balance: either the binding is alive or
    // it was rebound; capacity accounting matches the tree.
    let live = composer.find(&composed.system).unwrap();
    assert_eq!(live.bound_memory_mib(), 2048);
    for b in &live.bindings {
        assert!(
            rig.ofmf.registry.exists(&b.connection),
            "binding {} must exist",
            b.connection
        );
    }
    let dangling = rig.ofmf.registry.dangling_links();
    assert!(dangling.is_empty(), "dangling: {dangling:?}");
    // Free capacity is total minus exactly what is bound.
    let inv = composer.inventory();
    assert_eq!(inv.free_memory_mib(), (2 << 20) - 2048);
}

#[test]
fn switch_death_storm_with_many_connections() {
    let rig = demo_rig(403);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    let mut systems = Vec::new();
    for i in 0..4 {
        systems.push(
            composer
                .compose(&CompositionRequest::compute_only(&format!("j{i}"), 8, 8).with_fabric_memory_mib(1024))
                .unwrap(),
        );
    }
    // Kill both spines and a leaf: many connections lost at once.
    rig.cxl.inject_fault(Fault::SwitchDown(SwitchId(0)));
    rig.cxl.inject_fault(Fault::SwitchDown(SwitchId(1)));
    rig.cxl.inject_fault(Fault::SwitchDown(SwitchId(2)));
    rig.ofmf.poll();
    // Repair everything.
    for s in 0..3 {
        rig.cxl.inject_fault(Fault::SwitchUp(SwitchId(s)));
    }
    rig.ofmf.poll();
    let (repaired, lost) = composer.reconcile();
    assert_eq!(lost, 0, "all bindings recoverable after repair");
    // Some connections survived (same-leaf) — only broken ones rebound.
    assert!(repaired <= 4);
    for s in &systems {
        assert_eq!(composer.find(&s.system).unwrap().bound_memory_mib(), 1024);
    }
}

#[test]
fn device_loss_releases_capacity_accounting() {
    let rig = demo_rig(404);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    let before = composer.inventory().free_memory_mib();
    let composed = composer
        .compose(&CompositionRequest::compute_only("victim", 8, 8).with_fabric_memory_mib(4096))
        .unwrap();
    // mem00 dies (device index 4: after the 4 compute nodes).
    rig.cxl.inject_fault(Fault::DeviceDown(DeviceId(4)));
    rig.ofmf.poll();
    // The dead appliance is out of inventory entirely; its capacity is gone
    // from the free pool rather than "free".
    let inv = composer.inventory();
    assert_eq!(inv.memory.len(), 1);
    assert_eq!(inv.free_memory_mib(), 1 << 20, "only mem01 counts");
    // Reconcile rebinds from mem01.
    let (repaired, lost) = composer.reconcile();
    assert_eq!((repaired, lost), (1, 0));
    let live = composer.find(&composed.system).unwrap();
    assert!(live.bindings[0].resource.as_str().contains("mem01"));
    // Repair: capacity returns.
    rig.cxl.inject_fault(Fault::DeviceUp(DeviceId(4)));
    rig.ofmf.poll();
    assert_eq!(composer.inventory().free_memory_mib(), before - 4096);
}

#[test]
fn slow_subscriber_does_not_stall_the_control_plane() {
    let rig = demo_rig(405);
    // A subscriber that never drains, with every event type.
    let (id, _rx_kept_but_never_read) = rig
        .ofmf
        .events
        .subscribe(&rig.ofmf.registry, "channel://slow", vec![], vec![])
        .unwrap();
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    // Generate far more events than the queue depth.
    for i in 0..300 {
        let s = composer
            .compose(&CompositionRequest::compute_only(&format!("spin{i}"), 8, 8))
            .unwrap();
        composer.decompose(&s.system).unwrap();
    }
    // Control plane is healthy; the slow queue just dropped.
    assert!(rig.ofmf.events.dropped_count(&id) > 0);
    assert!(rig.ofmf.registry.dangling_links().is_empty());
}

#[test]
fn malformed_wire_input_never_kills_the_server() {
    use std::io::{Read, Write};
    let rig = demo_rig(406);
    let router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let server = RestServer::start("127.0.0.1:0", router, 2).unwrap();

    let attacks: &[&[u8]] = &[
        b"\x00\x01\x02\x03\x04garbage\r\n\r\n",
        b"GET\r\n\r\n",
        b"GET / HTTP/9.9\r\n\r\n",
        b"POST /redfish/v1/Systems HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
        b"GET /redfish/v1 HTTP/1.1\r\nbroken header line\r\n\r\n",
        b"PATCH /redfish/v1 HTTP/1.1\r\nConnection: close\r\nContent-Length: 5\r\n\r\n{bad}",
    ];
    for attack in attacks {
        let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
        // Guard against a server that (legitimately) keeps the connection
        // open: a bounded read, not read-to-EOF forever.
        s.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        s.write_all(attack).unwrap();
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        // Either a clean error response or a clean close; never a hang.
        if !out.is_empty() {
            let head = String::from_utf8_lossy(&out);
            assert!(head.starts_with("HTTP/1.1 4"), "unexpected: {head}");
        }
    }
    // The server still serves legitimate traffic afterwards.
    let mut c = HttpClient::new(server.addr());
    assert_eq!(c.get("/redfish/v1").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn composer_survives_unregistered_fabric() {
    let rig = demo_rig(407);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    let composed = composer
        .compose(&CompositionRequest::compute_only("orphan", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
    // The whole CXL fabric is unregistered (admin action) while bound.
    rig.ofmf.unregister_agent("CXL0").unwrap();
    // Inventory no longer offers CXL pools.
    assert_eq!(composer.inventory().memory.len(), 0);
    // Decompose degrades gracefully: connection teardown fails (agent gone)
    // but the composed system resource is removed and state cleaned.
    let _ = composer.decompose(&composed.system);
    assert!(composer.find(&composed.system).is_none());
}
