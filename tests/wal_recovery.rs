//! End-to-end durability: a full OFMF stack journals every control-plane
//! mutation, writes a compacted snapshot, hard-stops, and a fresh process
//! resumes — tree, sessions, subscriptions, clock baseline and live
//! compositions all where the previous process left them.

use composer::{Composer, CompositionRequest, Strategy};
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_core::{Agent, Ofmf};
use ofmf_wal::{FsyncPolicy, Wal};
use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use serde_json::json;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ofmf-wal-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn credentials() -> HashMap<String, String> {
    HashMap::from([("admin".to_string(), "hunter2".to_string())])
}

fn register_rig(ofmf: &Arc<Ofmf>, seed: u64) {
    let shape = RackShape::default();
    let agents: [Arc<dyn Agent>; 3] = [
        Arc::new(cxl_agent("CXL0", &shape, 1 << 20, seed ^ 1)),
        Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, seed ^ 2)),
        Arc::new(infiniband_agent("IB0", &shape, "A100", seed ^ 3)),
    ];
    for a in agents {
        ofmf.register_agent(a).expect("register");
    }
}

/// The acceptance walk: mutate every journaled service, snapshot midway,
/// stop, restart, and verify each service resumed.
#[test]
fn full_stack_survives_a_restart() {
    let dir = fresh_dir("full-stack");

    // ---- Epoch 1 ----
    let (token, sub_id, t_crash, etag_before) = {
        let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Batch(5)).expect("open"));
        let ofmf = Ofmf::with_wal("ofmf-e2e", credentials(), 7001, wal).expect("fresh boot");
        assert!(!ofmf.was_recovered());
        register_rig(&ofmf, 7001);

        // A session, a subscription, a composition, and a custom document.
        let (token, _sid) = ofmf.sessions.login(&ofmf.registry, "admin", "hunter2").expect("login");
        let (sub_id, _rx) = ofmf
            .events
            .subscribe(
                &ofmf.registry,
                "https://listener.example/events",
                vec![EventType::Alert, EventType::StatusChange],
                vec![ODataId::new("/redfish/v1/Fabrics/CXL0")],
            )
            .expect("subscribe");
        let composer = Arc::new(Composer::new(Arc::clone(&ofmf), Strategy::FirstFit));
        composer.attach_snapshot_provider();
        composer
            .compose(
                &CompositionRequest::compute_only("resilient", 8, 8)
                    .with_fabric_memory_mib(2048)
                    .with_storage_bytes(1 << 30),
            )
            .expect("compose");

        // A composition created and torn down again must NOT come back.
        let gone = composer
            .compose(&CompositionRequest::compute_only("ephemeral", 8, 8))
            .expect("compose ephemeral");
        composer.decompose(&gone.system).expect("decompose");

        // Snapshot midway: the restart must stitch snapshot + rotated log +
        // live log back together.
        ofmf.write_snapshot().expect("snapshot");
        ofmf.registry
            .patch(
                &ODataId::new("/redfish/v1/Systems/resilient"),
                &json!({"AssetTag": "post-snapshot-write"}),
                None,
            )
            .expect("patch after snapshot");

        // Clock marks let the next process resume the timeline.
        ofmf.clock.advance_ms(1500);
        ofmf.poll();
        (token, sub_id, ofmf.clock.now_ms(), ofmf.registry.etag_seq())
    };

    // ---- Epoch 2 ----
    let replayed_before = ofmf_obs::counter("ofmf.wal.replayed.total").get();
    let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Batch(5)).expect("reopen"));
    let ofmf = Ofmf::with_wal("ofmf-e2e", credentials(), 7001, wal).expect("recovery boot");
    assert!(ofmf.was_recovered());
    assert!(
        ofmf_obs::counter("ofmf.wal.replayed.total").get() > replayed_before,
        "replay counted its records"
    );
    register_rig(&ofmf, 7001);
    ofmf.finish_recovery();
    let composer = Arc::new(Composer::new(Arc::clone(&ofmf), Strategy::FirstFit));
    composer.attach_snapshot_provider();
    let (restored, compensated) = composer.recover();
    assert_eq!((restored, compensated), (1, 0), "one committed composition, no debris");

    // The clock resumed at or after the crash point: no time travel.
    assert!(ofmf.clock.now_ms() >= t_crash - 1000, "clock baseline resumed");

    // The session still authenticates — same token, original deadline rules.
    let user = ofmf
        .sessions
        .authenticate(&ofmf.registry, &token)
        .expect("session survived");
    assert_eq!(user, "admin");
    assert_eq!(ofmf.sessions.session_count(), 1);

    // The subscription is back (plus the internal event-log tap) and its
    // document is in the tree.
    assert_eq!(ofmf.events.subscription_count(), 2);
    let sub_doc = ofmf
        .registry
        .get(&ODataId::new("/redfish/v1/EventService/Subscriptions").child(&sub_id))
        .expect("subscription doc replayed")
        .body;
    assert_eq!(sub_doc["Destination"], "https://listener.example/events");

    // The composition is live again; the decomposed one stayed dead.
    let resilient = ODataId::new("/redfish/v1/Systems/resilient");
    let c = composer.find(&resilient).expect("composition restored");
    assert_eq!(c.bound_memory_mib(), 2048);
    assert_eq!(c.bound_storage_bytes(), 1 << 30);
    assert!(composer.find(&ODataId::new("/redfish/v1/Systems/ephemeral")).is_none());
    assert!(!ofmf.registry.exists(&ODataId::new("/redfish/v1/Systems/ephemeral")));

    // The post-snapshot patch made it: replay = snapshot + live tail.
    let body = ofmf.registry.get(&resilient).expect("doc").body;
    assert_eq!(body["AssetTag"], "post-snapshot-write");

    // No stale links, monotonic validators, and the stack still mutates.
    assert!(ofmf.registry.dangling_links().is_empty());
    assert!(ofmf.registry.etag_seq() >= etag_before);
    composer
        .grow_memory(&resilient, 512)
        .expect("reprovision still works after recovery");
    assert_eq!(
        composer.find(&resilient).map(|c| c.bound_memory_mib()),
        Some(2048 + 512)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sessions restored from the journal keep their ORIGINAL idle deadline:
/// the sweep evicts them relative to the resumed clock, not a reset one.
#[test]
fn restored_sessions_rejoin_the_expiry_sweep() {
    let dir = fresh_dir("session-sweep");
    let token = {
        let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Always).expect("open"));
        let ofmf = Ofmf::with_wal("ofmf-sess", credentials(), 7002, wal).expect("boot");
        let (token, _) = ofmf.sessions.login(&ofmf.registry, "admin", "hunter2").expect("login");
        // Burn most of the idle budget before the crash; the poll loop's
        // periodic ClockMark is what lets the next process resume time.
        ofmf.clock.advance_ms(ofmf.sessions.timeout_ms() - 100);
        ofmf.poll();
        token
    };
    let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Always).expect("reopen"));
    let ofmf = Ofmf::with_wal("ofmf-sess", credentials(), 7002, wal).expect("recovery boot");
    assert!(ofmf.was_recovered());
    assert_eq!(ofmf.sessions.session_count(), 1, "session replayed");
    // 100ms of budget left on the original deadline: 101ms past the restart
    // the sweep must evict it, NOT timeout_ms past the restart.
    ofmf.clock.advance_ms(101);
    assert_eq!(
        ofmf.sessions.sweep_expired(&ofmf.registry),
        1,
        "original deadline enforced"
    );
    assert!(ofmf.sessions.authenticate(&ofmf.registry, &token).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshots compact: after `write_snapshot` the live log restarts near
/// empty, and a reboot replays snapshot + tail identically.
#[test]
fn snapshot_compacts_the_live_log() {
    let dir = fresh_dir("compaction");
    {
        let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Off).expect("open"));
        let ofmf = Ofmf::with_wal("ofmf-compact", HashMap::new(), 7003, wal).expect("boot");
        register_rig(&ofmf, 7003);
        for i in 0..50 {
            ofmf.registry
                .patch(
                    &ODataId::new("/redfish/v1/Fabrics/CXL0"),
                    &json!({"Oem": {"OFMF": {"Churn": i}}}),
                    None,
                )
                .expect("patch");
        }
        let before = ofmf.wal().expect("wal attached").log_bytes();
        assert!(before > 0);
        ofmf.write_snapshot().expect("snapshot");
        let after = ofmf.wal().expect("wal attached").log_bytes();
        assert!(after < before, "live log compacted: {after} !< {before}");
    }
    let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Off).expect("reopen"));
    let ofmf = Ofmf::with_wal("ofmf-compact", HashMap::new(), 7003, wal).expect("recovery boot");
    assert!(ofmf.was_recovered());
    let body = ofmf
        .registry
        .get(&ODataId::new("/redfish/v1/Fabrics/CXL0"))
        .expect("doc")
        .body;
    assert_eq!(body["Oem"]["OFMF"]["Churn"], 49, "last write wins through the snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}
