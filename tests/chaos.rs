//! Chaos suite: the supervisor layer under injected agent misbehavior.
//!
//! Every scenario drives the full stack (Composer → Ofmf → supervisor →
//! `ChaosAgent` → `SimAgent`) with seeded faults and asserts the paper's
//! availability claim holds: the manager keeps composing and serving the
//! unified tree while agents drop ops, flap heartbeats and crash mid-op.

use composer::{Composer, CompositionRequest, Strategy};
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_agents::{ChaosAgent, ChaosConfig};
use ofmf_core::agent::AgentOp;
use ofmf_core::ofmf::MAX_MISSED_HEARTBEATS;
use ofmf_core::supervisor::{BreakerState, SupervisorConfig};
use ofmf_core::{Agent, Ofmf};
use ofmf_rest::http::{HttpVersion, Method, Request};
use ofmf_rest::Router;
use redfish_model::odata::ODataId;
use redfish_model::RedfishError;
use serde_json::json;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The demo rig's three fabrics, each behind a [`ChaosAgent`].
struct ChaosRig {
    ofmf: Arc<Ofmf>,
    cxl: Arc<ChaosAgent>,
    nvmeof: Arc<ChaosAgent>,
    infiniband: Arc<ChaosAgent>,
}

/// Boot the rig; `chaos(fabric_id)` returns the fault schedule per fabric.
fn chaos_rig(seed: u64, chaos: impl Fn(&str) -> ChaosConfig) -> ChaosRig {
    let ofmf = Ofmf::new_with_supervisor("ofmf-chaos-rig", HashMap::new(), seed, SupervisorConfig::default());
    let shape = RackShape::default();
    let wrap = |inner: Arc<dyn Agent>, fid: &str| {
        Arc::new(ChaosAgent::new(inner, chaos(fid)).with_clock(Arc::clone(&ofmf.clock)))
    };
    let cxl = wrap(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, seed ^ 1)), "CXL0");
    let nvmeof = wrap(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, seed ^ 2)), "NVME0");
    let infiniband = wrap(Arc::new(infiniband_agent("IB0", &shape, "A100", seed ^ 3)), "IB0");
    for a in [&cxl, &nvmeof, &infiniband] {
        ofmf.register_agent(Arc::clone(a) as Arc<dyn Agent>).expect("fresh rig");
    }
    ChaosRig {
        ofmf,
        cxl,
        nvmeof,
        infiniband,
    }
}

/// The acceptance scenario: 5% op-drop everywhere plus one forced agent
/// crash mid-compose. No composition may be left half-bound; the dead
/// agent's subtree must read `Health=Critical` while down; recovery +
/// `reconcile` must restore it with zero stale links.
#[test]
fn crash_mid_compose_leaves_no_half_bound_composition() {
    let rig = chaos_rig(2001, |fid| {
        let cfg = ChaosConfig::quiet(2001 ^ fid.len() as u64).with_drop_rate(0.05);
        if fid == "CXL0" {
            // Two warm-up ops succeed; the crash lands inside the next
            // compose's bind sequence (zone created, connect panics).
            cfg.with_crash_after_ops(3)
        } else {
            cfg
        }
    });
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);

    // Warm-up: a healthy composition (2 CXL ops: CreateZone + Connect).
    let warm = composer
        .compose(&CompositionRequest::compute_only("warm", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
    assert_eq!(warm.bound_memory_mib(), 1024);

    // Doomed: the CXL agent crashes mid-bind. The error names the fabric.
    let err = composer
        .compose(&CompositionRequest::compute_only("doomed", 8, 8).with_fabric_memory_mib(1024))
        .unwrap_err();
    assert_eq!(err.http_status(), 503, "{err}");
    assert!(
        err.to_string().contains("CXL0"),
        "503 must name the failed fabric: {err}"
    );
    // The half-created zone's teardown was journaled, not lost.
    assert!(rig.ofmf.journal_len("CXL0") >= 1, "teardown journaled for replay");
    // No half-bound composition: the doomed system does not exist and holds
    // no bindings.
    assert!(composer.find(&ODataId::new("/redfish/v1/Systems/doomed")).is_none());

    // Heartbeats now fail; the fabric subtree degrades after the threshold.
    for _ in 0..MAX_MISSED_HEARTBEATS {
        rig.ofmf.poll();
    }
    assert!(!rig.ofmf.agent_alive("CXL0"));
    assert_eq!(rig.ofmf.breaker_state("CXL0"), Some(BreakerState::Open));
    let fabric = ODataId::new("/redfish/v1/Fabrics/CXL0");
    let root = rig.ofmf.registry.get(&fabric).unwrap().body;
    assert_eq!(root["Status"]["Health"], "Critical");
    assert_eq!(root["Status"]["State"], "UnavailableOffline");
    // …including children of the mounted subtree.
    let endpoints = rig.ofmf.registry.get(&fabric.child("Endpoints")).unwrap().body;
    assert_eq!(endpoints["Status"]["Health"], "Critical");
    // Reads keep serving last-known-good state (warm's binding is visible).
    assert!(rig.ofmf.get(&warm.bindings[0].connection).is_ok());
    // Mutations are rejected while the breaker is open.
    let refused = rig
        .ofmf
        .apply(
            "CXL0",
            &AgentOp::CreateZone {
                zone_id: "nope".into(),
                endpoints: vec![],
            },
        )
        .unwrap_err();
    assert!(matches!(refused, RedfishError::CircuitOpen { .. }), "{refused}");
    // Other fabrics keep composing.
    composer
        .compose(&CompositionRequest::compute_only("survivor", 8, 8).with_storage_bytes(1 << 30))
        .unwrap();

    // Recovery: the agent heartbeats back; the journal replays, the subtree
    // restores, and reconcile finds nothing broken.
    rig.cxl.revive();
    rig.ofmf.poll();
    assert!(rig.ofmf.agent_alive("CXL0"));
    assert_eq!(rig.ofmf.journal_len("CXL0"), 0, "journal fully replayed");
    assert_eq!(rig.ofmf.breaker_state("CXL0"), Some(BreakerState::Closed));
    let root = rig.ofmf.registry.get(&fabric).unwrap().body;
    assert_eq!(root["Status"]["Health"], "OK");
    let endpoints = rig.ofmf.registry.get(&fabric.child("Endpoints")).unwrap().body;
    assert_ne!(endpoints["Status"]["Health"], "Critical", "prior status restored");
    // The doomed compose's half-created zone is gone after replay.
    let zones = rig.ofmf.registry.members(&fabric.child("Zones")).unwrap();
    assert_eq!(zones.len(), 1, "only warm's zone survives: {zones:?}");
    let (repaired, lost) = composer.reconcile();
    assert_eq!((repaired, lost), (0, 0), "nothing was stale after replay");
    assert!(rig.ofmf.registry.dangling_links().is_empty(), "zero stale links");
    // And the fabric serves new compositions again.
    composer
        .compose(&CompositionRequest::compute_only("recovered", 8, 8).with_fabric_memory_mib(512))
        .unwrap();
}

/// Hard-stop durability: the process dies mid-compose (simulated by cutting
/// the live WAL right after the first confirmed bind), restarts from
/// snapshot + journal, and recovery compensates the half-bound transaction.
/// After restart: no half-bound composition, zero stale links, committed
/// compositions restored, ETags still monotonic, and the rig composes again.
#[test]
fn hard_stop_mid_compose_recovers_from_wal_and_snapshot() {
    use ofmf_wal::{FsyncPolicy, Wal};

    let dir = std::env::temp_dir().join(format!("ofmf-chaos-hard-stop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shape = RackShape::default();
    let agents = |seed: u64| -> [Arc<dyn Agent>; 3] {
        [
            Arc::new(cxl_agent("CXL0", &shape, 1 << 20, seed ^ 1)),
            Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, seed ^ 2)),
            Arc::new(infiniband_agent("IB0", &shape, "A100", seed ^ 3)),
        ]
    };

    // ---- Epoch 1: compose one committed system, snapshot, then start a
    // second compose whose tail we tear off.
    let (etag_before, warm_binding_count) = {
        let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Always).expect("open wal"));
        let ofmf = Ofmf::with_wal("ofmf-hard-stop", HashMap::new(), 4001, wal).expect("fresh boot");
        assert!(!ofmf.was_recovered());
        for a in agents(4001) {
            ofmf.register_agent(a).expect("fresh rig");
        }
        let composer = Arc::new(Composer::new(Arc::clone(&ofmf), Strategy::FirstFit));
        composer.attach_snapshot_provider();
        let warm = composer
            .compose(&CompositionRequest::compute_only("warm", 8, 8).with_fabric_memory_mib(1024))
            .unwrap();
        // Snapshot now, so the restart exercises snapshot + live-log replay.
        ofmf.write_snapshot().expect("snapshot");
        // The victim spans two fabrics: memory (CXL0) then storage (NVME0).
        composer
            .compose(
                &CompositionRequest::compute_only("victim", 8, 8)
                    .with_fabric_memory_mib(512)
                    .with_storage_bytes(1 << 30),
            )
            .unwrap();
        (ofmf.registry.etag_seq(), warm.bindings.len())
    };

    // ---- Hard stop: keep the log only up to the end of the victim's first
    // confirmed bind. Everything after (second bind, system doc, commit) is
    // lost, exactly as if the process had been killed there.
    let log = dir.join("wal.log");
    let bytes = std::fs::read(&log).expect("read live log");
    let (frames, valid) = ofmf_wal::scan_frames(&bytes);
    assert_eq!(valid, bytes.len(), "epoch-1 log is fully valid");
    let cut = frames
        .iter()
        .find(|f| {
            serde_json::from_slice::<serde_json::Value>(&bytes[f.payload_start..f.payload_start + f.payload_len])
                .ok()
                .and_then(|v| v.get("k").and_then(|k| k.as_str().map(|s| s == "bind_done")))
                .unwrap_or(false)
        })
        .expect("victim confirmed at least one bind")
        .end();
    assert!(cut < bytes.len(), "the cut actually discards a tail");
    std::fs::write(&log, &bytes[..cut]).expect("truncate live log");

    // ---- Epoch 2: restart from the journal, re-register fresh agents,
    // reconcile.
    let wal = Arc::new(Wal::open(&dir, FsyncPolicy::Always).expect("reopen wal"));
    let ofmf = Ofmf::with_wal("ofmf-hard-stop", HashMap::new(), 4001, wal).expect("recovery boot");
    assert!(ofmf.was_recovered(), "journal was replayed");
    for a in agents(4001) {
        ofmf.register_agent(a).expect("re-register");
    }
    ofmf.finish_recovery();
    let composer = Arc::new(Composer::new(Arc::clone(&ofmf), Strategy::FirstFit));
    let (restored, compensated) = composer.recover();
    assert_eq!(restored, 1, "warm came back");
    assert_eq!(compensated, 1, "victim was compensated");

    // No half-bound composition survives the restart.
    let victim = ODataId::new("/redfish/v1/Systems/victim");
    assert!(composer.find(&victim).is_none());
    assert!(!ofmf.registry.exists(&victim), "half-created system doc removed");
    let zones = ofmf
        .registry
        .members(&ODataId::new("/redfish/v1/Fabrics/CXL0").child("Zones"))
        .unwrap();
    assert_eq!(zones.len(), 1, "only warm's zone survives: {zones:?}");

    // The committed composition is intact: state, bindings and tree agree.
    let warm = composer
        .find(&ODataId::new("/redfish/v1/Systems/warm"))
        .expect("warm restored");
    assert_eq!(warm.bindings.len(), warm_binding_count);
    assert_eq!(warm.bound_memory_mib(), 1024);
    for b in &warm.bindings {
        assert!(ofmf.registry.exists(&b.connection), "{:?}", b.connection);
        assert!(ofmf.registry.exists(&b.zone), "{:?}", b.zone);
    }

    // Zero stale links anywhere in the recovered tree.
    assert!(ofmf.registry.dangling_links().is_empty(), "zero stale links");

    // ETags keep increasing across the restart: a cached validator from
    // epoch 1 can never collide with a fresh epoch-2 write.
    assert!(
        ofmf.registry.etag_seq() >= etag_before,
        "etag floor honored: {} < {etag_before}",
        ofmf.registry.etag_seq()
    );
    let touched = ofmf
        .registry
        .patch(
            &ODataId::new("/redfish/v1/Systems/warm"),
            &json!({"Name": "warm"}),
            None,
        )
        .unwrap();
    assert!(touched.0 > etag_before, "fresh writes sort after the crash");

    // And the rig still serves new compositions.
    let again = composer
        .compose(
            &CompositionRequest::compute_only("victim", 8, 8)
                .with_fabric_memory_mib(512)
                .with_storage_bytes(1 << 30),
        )
        .expect("same request succeeds after compensation");
    assert_eq!(again.bindings.len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-mid-compose story must be reconstructable from its trace tree
/// alone: the retained trace shows the compensation (`unbind_all`) running
/// and the breaker opening, with the failed fabric named on the dispatch.
#[test]
fn crash_mid_compose_trace_records_compensation_and_breaker_open() {
    let rig = chaos_rig(2005, |fid| {
        let cfg = ChaosConfig::quiet(2005 ^ fid.len() as u64);
        if fid == "CXL0" {
            cfg.with_crash_after_ops(3)
        } else {
            cfg
        }
    });
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    composer
        .compose(&CompositionRequest::compute_only("warm-traced", 8, 8).with_fabric_memory_mib(1024))
        .unwrap();
    let err = composer
        .compose(&CompositionRequest::compute_only("doomed-traced", 8, 8).with_fabric_memory_mib(1024))
        .unwrap_err();
    assert_eq!(err.http_status(), 503, "{err}");

    // Composes force-sample, so the doomed trace is in the flight recorder.
    let traces = ofmf_obs::recorder().recent();
    let trace = traces
        .iter()
        .find(|t| {
            t.spans.iter().any(|s| {
                s.name == "ofmf.composer.compose"
                    && s.annotations
                        .iter()
                        .any(|(k, v)| *k == "request" && v == "doomed-traced")
            })
        })
        .expect("doomed compose trace retained");
    assert!(trace.errored, "errored flag set on the trace");

    // Compensation ran and is a span of the same tree.
    assert!(
        trace.spans.iter().any(|s| s.name == "ofmf.composer.unbind_all"),
        "unbind_all span recorded: {:?}",
        trace.spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );

    // The dispatch against the crashed agent is errored, names the fabric,
    // and carries the breaker's Closed->Open transition as an annotation.
    let dispatch = trace
        .spans
        .iter()
        .find(|s| {
            s.name == "ofmf.supervisor.dispatch"
                && s.annotations.iter().any(|(k, v)| *k == "fabric" && v == "CXL0")
                && s.annotations
                    .iter()
                    .any(|(k, v)| *k == "breaker" && v.contains("Closed->Open"))
        })
        .expect("breaker-open annotation on the CXL0 dispatch span");
    assert_eq!(dispatch.status, ofmf_obs::SpanStatus::Error);

    // Every failed attempt is an annotated, errored child of the dispatch.
    let attempts: Vec<_> = trace
        .spans
        .iter()
        .filter(|s| s.parent_id == dispatch.id && s.name == "ofmf.supervisor.attempt")
        .collect();
    assert!(attempts.len() >= 3, "retry attempts recorded: {}", attempts.len());
    assert!(attempts
        .iter()
        .all(|a| a.status == ofmf_obs::SpanStatus::Error && a.annotations.iter().any(|(k, _)| *k == "attempt")));
}

/// Retries absorb a 5% op-drop rate: a burst of compositions all succeed.
#[test]
fn five_percent_drop_rate_is_absorbed_by_retries() {
    let rig = chaos_rig(2002, |fid| {
        ChaosConfig::quiet(2002 ^ fid.len() as u64).with_drop_rate(0.05)
    });
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);
    for i in 0..16 {
        let req = CompositionRequest::compute_only(&format!("burst{i}"), 8, 8)
            .with_fabric_memory_mib(256)
            .with_storage_bytes(1 << 20);
        let c = composer.compose(&req).unwrap();
        composer.decompose(&c.system).unwrap();
    }
    let dropped = rig.cxl.dropped_ops() + rig.nvmeof.dropped_ops() + rig.infiniband.dropped_ops();
    assert!(dropped > 0, "the schedule actually dropped ops");
    assert!(rig.ofmf.registry.dangling_links().is_empty());
    // Every breaker ended the run closed.
    for fid in ["CXL0", "NVME0", "IB0"] {
        assert_eq!(rig.ofmf.breaker_state(fid), Some(BreakerState::Closed), "{fid}");
    }
}

/// While a breaker is open, REST surfaces 503 + `Retry-After`.
#[test]
fn open_breaker_surfaces_503_with_retry_after_over_rest() {
    let rig = chaos_rig(2003, |_| ChaosConfig::quiet(2003));
    rig.cxl.set_down(true);
    for _ in 0..MAX_MISSED_HEARTBEATS {
        rig.ofmf.poll();
    }
    assert_eq!(rig.ofmf.breaker_state("CXL0"), Some(BreakerState::Open));

    let router = Router::new(Arc::clone(&rig.ofmf), false);
    let body = json!({
        "Id": "z-denied",
        "Links": {"Endpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00.cxl"}]}
    });
    let resp = router.handle(&Request {
        method: Method::Post,
        path: "/redfish/v1/Fabrics/CXL0/Zones".into(),
        query: None,
        headers: BTreeMap::new(),
        body: serde_json::to_vec(&body).unwrap(),
        version: HttpVersion::Http11,
    });
    assert_eq!(resp.status, 503);
    let retry_after = resp
        .headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("retry-after"))
        .map(|(_, v)| v.clone());
    let secs: u64 = retry_after.expect("Retry-After present").parse().unwrap();
    assert!(secs >= 1);
    // Reads of the degraded subtree still serve (last-known-good).
    let read = router.handle(&Request {
        method: Method::Get,
        path: "/redfish/v1/Fabrics/CXL0".into(),
        query: None,
        headers: BTreeMap::new(),
        body: Vec::new(),
        version: HttpVersion::Http11,
    });
    assert_eq!(read.status, 200);
}

/// Acceptance: two runs with the same seed produce identical
/// breaker-transition logs (timestamps, states and causes all match).
#[test]
fn same_seed_produces_identical_breaker_transition_logs() {
    fn scenario(seed: u64) -> Vec<String> {
        let rig = chaos_rig(seed, |fid| {
            ChaosConfig::quiet(seed ^ fid.len() as u64)
                .with_drop_rate(0.4)
                .with_flap_rate(0.5)
        });
        let probe = AgentOp::ProbeRoute {
            initiator: ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/cn00.cxl"),
            target: ODataId::new("/redfish/v1/Fabrics/CXL0/Endpoints/mem00"),
        };
        for round in 0..40 {
            rig.ofmf.poll();
            if round % 3 == 0 {
                let _ = rig.ofmf.apply("CXL0", &probe);
            }
            rig.ofmf.clock.advance_ms(50);
        }
        let mut log = Vec::new();
        for fid in ["CXL0", "NVME0", "IB0"] {
            for line in rig.ofmf.breaker_log(fid) {
                log.push(format!("{fid} {line}"));
            }
        }
        log
    }
    let a = scenario(777);
    let b = scenario(777);
    assert!(!a.is_empty(), "the schedule caused breaker transitions");
    assert_eq!(a, b, "identical seeds must replay identically");
    assert_ne!(scenario(778), a, "a different seed (almost surely) diverges");
}

/// Probe chaos: `ProbeRoutes` batches are dropped, delayed and duplicated,
/// yet topology-aware composes still succeed — a failed batch degrades that
/// fabric to unprobed scoring instead of failing the compose, and no
/// dispatch hangs past the supervisor's service-clock deadline.
#[test]
fn topology_aware_compose_survives_probe_chaos() {
    let rig = chaos_rig(2007, |fid| {
        ChaosConfig::quiet(2007 ^ fid.len() as u64)
            .with_drop_rate(0.3)
            .with_duplicate_rate(0.3)
            .with_delay_ms(20)
    });
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::TopologyAware);
    let started = rig.ofmf.clock.now_ms();
    let mut dispatch_bound_ms = 0;
    for i in 0..4 {
        let req = CompositionRequest::compute_only(&format!("probed{i}"), 8, 8)
            .with_fabric_memory_mib(256)
            .with_storage_bytes(1 << 20)
            .with_gpus(1)
            .with_memory_bandwidth_gbps(5.0);
        let c = composer.compose(&req).unwrap();
        assert_eq!(c.bound_memory_mib(), 256);
        assert_eq!(c.bound_gpus(), 1);
        // Per cycle: ≤3 probe batches (one per fabric) + 2 agent ops per
        // binding on compose (zone + connect) and 2 more on decompose,
        // each bounded by the dispatch deadline.
        dispatch_bound_ms += (3 + 4 * c.bindings.len() as u64) * 1_000;
        composer.decompose(&c.system).unwrap();
    }
    let perturbed = [&rig.cxl, &rig.nvmeof, &rig.infiniband]
        .iter()
        .map(|a| a.dropped_ops() + a.duplicated_ops())
        .sum::<u64>();
    assert!(perturbed > 0, "the schedule actually perturbed ops");
    // The injected 20ms latency advances the manual service clock, so total
    // elapsed time proves no dispatch (probe batches included) overran its
    // deadline — a hung probe would blow straight through this bound.
    let elapsed = rig.ofmf.clock.now_ms() - started;
    assert!(
        elapsed < dispatch_bound_ms,
        "{elapsed}ms vs bound {dispatch_bound_ms}ms"
    );
    assert!(rig.ofmf.registry.dangling_links().is_empty());
}

/// Acceptance: probe batches fan out across fabrics on parallel threads, but
/// placement decisions stay deterministic — two runs with the same seed pick
/// identical resources even while probes are being dropped and duplicated.
#[test]
fn same_seed_topology_aware_placements_are_identical_despite_parallel_probing() {
    fn scenario(seed: u64) -> Vec<String> {
        let ofmf = Ofmf::new_with_supervisor("ofmf-probe-det", HashMap::new(), seed, SupervisorConfig::default());
        let shape = RackShape::default();
        // Three memory fabrics: one topology-aware choose probes all three
        // in a single parallel fan-out.
        for (fid, salt) in [("CXL0", 1u64), ("CXL1", 2), ("CXL2", 3)] {
            let chaos = ChaosConfig::quiet(seed ^ salt)
                .with_drop_rate(0.25)
                .with_duplicate_rate(0.25);
            let agent = ChaosAgent::new(Arc::new(cxl_agent(fid, &shape, 1 << 20, seed ^ salt)), chaos)
                .with_clock(Arc::clone(&ofmf.clock));
            ofmf.register_agent(Arc::new(agent) as Arc<dyn Agent>)
                .expect("fresh rig");
        }
        let composer = Composer::new(Arc::clone(&ofmf), Strategy::TopologyAware);
        let mut placements = Vec::new();
        for i in 0..6 {
            let req = CompositionRequest::compute_only(&format!("det{i}"), 8, 8)
                .with_fabric_memory_mib(512)
                .with_memory_bandwidth_gbps(8.0);
            match composer.compose(&req) {
                Ok(c) => {
                    for b in &c.bindings {
                        placements.push(format!("det{i} {} {}", b.fabric, b.resource.as_str()));
                    }
                }
                Err(e) => placements.push(format!("det{i} err {}", e.http_status())),
            }
        }
        placements
    }
    let a = scenario(3100);
    assert!(!a.is_empty());
    assert_eq!(a, scenario(3100), "identical seeds must place identically");
}

/// With `--features lockcheck`, assert the chaos suite leaves the
/// process-global lock-acquisition graph acyclic. Cycles only accumulate,
/// so re-driving a crash/recovery scenario and then checking covers this
/// binary's locking surface regardless of test execution order.
#[cfg(feature = "lockcheck")]
#[test]
fn lock_order_graph_is_cycle_free_after_chaos() {
    crash_mid_compose_leaves_no_half_bound_composition();
    // The tracing path (span buffers, recorder stripes, route map) must not
    // add a cycle either.
    crash_mid_compose_trace_records_compensation_and_breaker_open();
    // Nor the probe pipeline: its result cache takes a Mutex around the
    // parallel batch fan-out and must stay acyclic with the agent locks.
    topology_aware_compose_survives_probe_chaos();
    let report = parking_lot::lock_order_report();
    assert!(
        report.cycles.is_empty(),
        "potential deadlock witnessed by chaos suite:\n{}",
        report.render()
    );
}
