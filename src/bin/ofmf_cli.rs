//! `ofmf_cli` — a small Redfish client for an `ofmfd` instance.
//!
//! ```text
//! Usage: ofmf_cli [--server HOST:PORT] [--token T] COMMAND [ARGS]
//!
//! Commands:
//!   get PATH                 GET a resource (pretty-printed)
//!   members PATH             list a collection's member ids
//!   post PATH JSON           create a member
//!   patch PATH JSON          merge-patch a resource
//!   delete PATH              delete a resource
//!   login USER PASSWORD      create a session, print the token
//!   log [N]                  show the last N event-log entries (default 10)
//!   tree [PREFIX]            walk collections breadth-first from PREFIX
//!   stats                    service health summary from the live metrics
//!   wal-status               durability journal counters (appends, fsyncs,
//!                            replays, torn tails, snapshots)
//!   lock-report              lockcheck hold-time/contention/blocking summary
//!                            (ofmfd built with --features lockcheck)
//!   trace ID                 render a flight-recorder span tree (self-time,
//!                            critical path marked with `*`)
//! ```
//!
//! Trace ids come from the `X-OFMF-TraceId` response header, from exemplar
//! links in `ofmf_cli stats`, or from the members of
//! `/redfish/v1/Managers/OFMF/LogServices/Tracing/Entries`.

use ofmf_rest::client::HttpClient;
use serde_json::Value;
use std::net::SocketAddr;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => {}
        Err(msg) => {
            eprintln!("ofmf_cli: {msg}");
            std::process::exit(1);
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    let mut server = "127.0.0.1:8421".to_string();
    let mut token = None;
    while args.first().map(String::as_str) == Some("--server") || args.first().map(String::as_str) == Some("--token") {
        let flag = args.remove(0);
        if args.is_empty() {
            return Err(format!("{flag} requires a value"));
        }
        let v = args.remove(0);
        if flag == "--server" {
            server = v;
        } else {
            token = Some(v);
        }
    }
    let addr: SocketAddr = server
        .parse()
        .map_err(|e| format!("bad --server address '{server}': {e}"))?;
    let mut client = HttpClient::new(addr);
    client.token = token;

    let cmd = args.first().cloned().ok_or("no command; try: get /redfish/v1")?;
    let arg = |i: usize| -> Result<&str, String> {
        args.get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("{cmd} needs more arguments"))
    };

    match cmd.as_str() {
        "get" => {
            let r = client.get(arg(1)?).map_err(stringify)?;
            print_response(&r)
        }
        "members" => {
            let r = client.get(arg(1)?).map_err(stringify)?;
            check(&r)?;
            let v = r.json().ok_or("non-JSON response")?;
            let members = v["Members"].as_array().ok_or("not a collection")?;
            for m in members {
                println!("{}", m["@odata.id"].as_str().unwrap_or("?"));
            }
            Ok(())
        }
        "post" => {
            let body: Value = serde_json::from_str(arg(2)?).map_err(|e| format!("bad JSON: {e}"))?;
            let r = client.post(arg(1)?, &body).map_err(stringify)?;
            if let Some(loc) = r.header("location") {
                eprintln!("created: {loc}");
            }
            print_response(&r)
        }
        "patch" => {
            let body: Value = serde_json::from_str(arg(2)?).map_err(|e| format!("bad JSON: {e}"))?;
            let r = client.patch(arg(1)?, &body).map_err(stringify)?;
            print_response(&r)
        }
        "delete" => {
            let r = client.delete(arg(1)?).map_err(stringify)?;
            check(&r)?;
            eprintln!("deleted ({})", r.status);
            Ok(())
        }
        "login" => {
            let body = serde_json::json!({"UserName": arg(1)?, "Password": arg(2)?});
            let r = client
                .post("/redfish/v1/SessionService/Sessions", &body)
                .map_err(stringify)?;
            check(&r)?;
            println!("{}", r.header("x-auth-token").ok_or("no token in response")?);
            Ok(())
        }
        "log" => {
            let n: usize = args
                .get(1)
                .map_or(Ok(10), |s| s.parse())
                .map_err(|e| format!("bad N: {e}"))?;
            let r = client
                .get("/redfish/v1/Managers/OFMF/LogServices/EventLog/Entries?$expand=.")
                .map_err(stringify)?;
            check(&r)?;
            let v = r.json().ok_or("non-JSON response")?;
            let entries = v["Members"].as_array().ok_or("no entries")?;
            for e in entries.iter().rev().take(n).collect::<Vec<_>>().into_iter().rev() {
                println!(
                    "[{:>8}] {:8} {}",
                    e["Created"].as_u64().unwrap_or(0),
                    e["Severity"].as_str().unwrap_or("?"),
                    e["Message"].as_str().unwrap_or("?"),
                );
            }
            Ok(())
        }
        "tree" => {
            let prefix = args.get(1).map(String::as_str).unwrap_or("/redfish/v1").to_string();
            let mut queue = vec![prefix];
            let mut seen = std::collections::BTreeSet::new();
            while let Some(path) = queue.pop() {
                if !seen.insert(path.clone()) {
                    continue;
                }
                let Ok(r) = client.get(&path) else { continue };
                if r.status != 200 {
                    continue;
                }
                let Some(v) = r.json() else { continue };
                let ty = v["@odata.type"].as_str().unwrap_or("");
                println!("{path}  {ty}");
                if let Some(members) = v["Members"].as_array() {
                    for m in members {
                        if let Some(id) = m["@odata.id"].as_str() {
                            queue.push(id.to_string());
                        }
                    }
                }
            }
            Ok(())
        }
        "stats" => stats(&mut client),
        "wal-status" => wal_status(&mut client),
        "lock-report" => lock_report(&mut client),
        "trace" => trace(&mut client, arg(1)?),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// `lock-report`: the recording shim's live lock health from the manager's
/// `Oem.OFMF.Lockcheck` overlay — hottest hold sites, witnessed
/// blocking-while-locked operations, and the runtime lock-order graph.
/// Only populated when `ofmfd` was built with `--features lockcheck`.
fn lock_report(client: &mut HttpClient) -> Result<(), String> {
    let r = client.get("/redfish/v1/Managers/OFMF").map_err(stringify)?;
    check(&r)?;
    let body = r.json().ok_or("non-JSON response")?;
    let lc = &body["Oem"]["OFMF"]["Lockcheck"];
    if lc.is_null() {
        println!("lockcheck: disabled (build ofmfd with --features lockcheck)");
        return Ok(());
    }
    println!(
        "hold sites:    {} (order edges: {}, cycles: {})",
        lc["HoldSites"], lc["OrderEdges"], lc["OrderCycles"]
    );
    let empty = Vec::new();
    let tops = lc["TopHolds"].as_array().unwrap_or(&empty);
    if !tops.is_empty() {
        println!("hottest holds (by total held time):");
        for t in tops {
            println!(
                "  {:<52} {:>5} holds  max {:>9} ns  p99 {:>9} ns  contended {}",
                format!(
                    "{} ({})",
                    t["Site"].as_str().unwrap_or("?"),
                    t["Mode"].as_str().unwrap_or("?")
                ),
                t["Count"],
                t["MaxNs"],
                t["P99Ns"],
                t["Contended"],
            );
        }
    }
    let blocking = lc["BlockingWhileLocked"].as_array().unwrap_or(&empty);
    if blocking.is_empty() {
        println!("blocking while locked: none witnessed");
    } else {
        println!("blocking while locked ({} witnessed):", blocking.len());
        for b in blocking {
            println!(
                "  {} at {} holding {}",
                b["Kind"].as_str().unwrap_or("?"),
                b["Site"].as_str().unwrap_or("?"),
                b["Held"]
            );
        }
    }
    Ok(())
}

/// `wal-status`: the durability journal's counters from the live metric
/// report. All-zero appends with no replay means the daemon runs without a
/// WAL (`ofmfd --wal-dir` not set).
fn wal_status(client: &mut HttpClient) -> Result<(), String> {
    let r = client
        .get("/redfish/v1/Managers/OFMF/MetricReports/live")
        .map_err(stringify)?;
    check(&r)?;
    let report = r.json().ok_or("non-JSON response")?;
    let empty = Vec::new();
    let vals = report["MetricValues"].as_array().unwrap_or(&empty);
    let metric = |id: &str| -> Option<f64> {
        vals.iter()
            .find(|v| v["MetricId"] == id)
            .and_then(|v| v["MetricValue"].as_str())
            .and_then(|s| s.parse().ok())
    };
    let present = [
        "ofmf.wal.appends.total",
        "ofmf.wal.bytes.total",
        "ofmf.wal.fsyncs.total",
        "ofmf.wal.replayed.total",
        "ofmf.wal.torn_tail.total",
        "ofmf.wal.snapshot.total",
        "ofmf.wal.errors.total",
    ]
    .iter()
    .any(|id| metric(id).is_some());
    if !present {
        println!("durability: disabled (no WAL metrics exported; start ofmfd with --wal-dir)");
        return Ok(());
    }
    let get = |id: &str| metric(id).unwrap_or(0.0);
    println!("durability:    enabled");
    println!(
        "appends:       {:.0} records ({:.0} bytes)",
        get("ofmf.wal.appends.total"),
        get("ofmf.wal.bytes.total")
    );
    println!("fsyncs:        {:.0}", get("ofmf.wal.fsyncs.total"));
    println!("replayed:      {:.0} records at boot", get("ofmf.wal.replayed.total"));
    println!("torn tails:    {:.0} truncated", get("ofmf.wal.torn_tail.total"));
    println!("snapshots:     {:.0} written", get("ofmf.wal.snapshot.total"));
    let errors = get("ofmf.wal.errors.total");
    println!(
        "errors:        {errors:.0}{}",
        if errors > 0.0 {
            "  <-- journal writes failing!"
        } else {
            ""
        }
    );
    Ok(())
}

/// `stats`: summarize service health from the observability export.
fn stats(client: &mut HttpClient) -> Result<(), String> {
    let r = client.get("/redfish/v1/Managers/OFMF").map_err(stringify)?;
    check(&r)?;
    let mgr = r.json().ok_or("non-JSON response")?;
    let obs = &mgr["Oem"]["OFMF"]["Observability"];
    let uptime_ms = obs["UptimeMs"].as_u64().unwrap_or(0);
    let requests = obs["RestRequests"].as_u64().unwrap_or(0);
    let uptime_s = (uptime_ms as f64 / 1000.0).max(0.001);

    let r = client
        .get("/redfish/v1/Managers/OFMF/MetricReports/live")
        .map_err(stringify)?;
    check(&r)?;
    let report = r.json().ok_or("non-JSON response")?;
    let metric = |id: &str| -> f64 {
        report["MetricValues"]
            .as_array()
            .and_then(|vals| vals.iter().find(|v| v["MetricId"] == id))
            .and_then(|v| v["MetricValue"].as_str())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.0)
    };
    let p99_ms = |id: &str| metric(id) / 1e6;

    println!(
        "observability: {}",
        if obs["Enabled"] == true { "enabled" } else { "DISABLED" }
    );
    println!("uptime:        {uptime_s:.1} s");
    println!(
        "rest:          {requests} requests ({:.1} req/s)",
        requests as f64 / uptime_s
    );
    println!(
        "               GET p99 {:.2} ms | POST p99 {:.2} ms | PATCH p99 {:.2} ms",
        p99_ms("ofmf.rest.get.latency_ns.p99"),
        p99_ms("ofmf.rest.post.latency_ns.p99"),
        p99_ms("ofmf.rest.patch.latency_ns.p99"),
    );
    println!(
        "               2xx {} | 4xx {} | 5xx {} | parse errors {}",
        metric("ofmf.rest.status.2xx") as u64,
        metric("ofmf.rest.status.4xx") as u64,
        metric("ofmf.rest.status.5xx") as u64,
        metric("ofmf.rest.parse_errors.total") as u64,
    );
    println!(
        "events:        {} published, {} delivered, {} dropped (fanout p99 {:.2} ms)",
        metric("ofmf.events.published.total") as u64,
        metric("ofmf.events.delivered.total") as u64,
        metric("ofmf.events.dropped.total") as u64,
        p99_ms("ofmf.events.fanout.latency_ns.p99"),
    );
    let candidates = metric("ofmf.events.index.candidates.total");
    let skipped = metric("ofmf.events.index.skipped.total");
    let scanned = candidates + skipped;
    println!(
        "               routing index: {} candidates visited, {} skipped ({:.0}% of subscriptions pruned)",
        candidates as u64,
        skipped as u64,
        if scanned > 0.0 { 100.0 * skipped / scanned } else { 0.0 },
    );
    println!(
        "telemetry:     {} samples ingested, {} contended shard acquisitions",
        metric("ofmf.telemetry.ingest.samples.total") as u64,
        metric("ofmf.telemetry.shard.contention") as u64,
    );
    println!(
        "composer:      {} composed, {} rejected",
        metric("ofmf.composer.composed.total") as u64,
        (metric("ofmf.composer.reject.no_node")
            + metric("ofmf.composer.reject.memory")
            + metric("ofmf.composer.reject.gpu")
            + metric("ofmf.composer.reject.storage")
            + metric("ofmf.composer.reject.other")) as u64,
    );
    let probe_hits = metric("ofmf.composer.probe.cache_hit.total");
    let probe_misses = metric("ofmf.composer.probe.cache_miss.total");
    let probe_lookups = probe_hits + probe_misses;
    println!(
        "               probes: {} batches / {} pairs sent, {} failed; cache {} hits / {} misses ({:.0}% hit)",
        metric("ofmf.composer.probe.batches.total") as u64,
        metric("ofmf.composer.probe.pairs.total") as u64,
        metric("ofmf.composer.probe.failed.total") as u64,
        probe_hits as u64,
        probe_misses as u64,
        if probe_lookups > 0.0 {
            100.0 * probe_hits / probe_lookups
        } else {
            0.0
        },
    );
    println!(
        "agents:        {} heartbeats (p99 {:.2} ms), {} missed",
        metric("ofmf.agents.heartbeat.rtt_ns.count") as u64,
        p99_ms("ofmf.agents.heartbeat.rtt_ns.p99"),
        metric("ofmf.agents.heartbeat.missed") as u64,
    );
    println!(
        "tasks:         {} in flight, {} completed, {} failed",
        metric("ofmf.tasks.inflight") as u64,
        metric("ofmf.tasks.completed.total") as u64,
        metric("ofmf.tasks.failed.total") as u64,
    );
    println!(
        "tracing:       {} spans started, {} dropped at span cap",
        metric("ofmf.trace.spans.started.total") as u64,
        metric("ofmf.trace.spans.dropped.total") as u64,
    );
    println!(
        "               recorder: {} retained now ({} retained / {} evicted all-time), {} exemplar top-band hits",
        obs["RetainedTraces"].as_u64().unwrap_or(0),
        metric("ofmf.trace.recorder.retained.total") as u64,
        metric("ofmf.trace.recorder.evicted.total") as u64,
        metric("ofmf.trace.exemplar.hits.total") as u64,
    );
    for (method, tid) in [
        ("GET", &obs["LatencyExemplars"]["Get"]),
        ("POST", &obs["LatencyExemplars"]["Post"]),
    ] {
        if let Some(id) = tid.as_u64() {
            println!("               slowest recent {method}: ofmf_cli trace {id}");
        }
    }
    Ok(())
}

/// `trace ID`: fetch one flight-recorder entry and render its span tree.
///
/// Each line shows total duration, self time (total minus direct children),
/// a `*` on spans lying on the critical path (greedy descent into the
/// longest child), and the span's annotations.
fn trace(client: &mut HttpClient, id: &str) -> Result<(), String> {
    let r = client
        .get(&format!("/redfish/v1/Managers/OFMF/LogServices/Tracing/Entries/{id}"))
        .map_err(stringify)?;
    check(&r)?;
    let entry = r.json().ok_or("non-JSON response")?;
    let t = &entry["Oem"]["OFMF"]["Trace"];
    if t.is_null() {
        return Err(format!("entry {id} carries no trace payload"));
    }
    let spans = t["Spans"].as_array().ok_or("trace has no Spans array")?;
    println!(
        "trace {}: {} — {:.3} ms, {} spans, retained: {}{}",
        t["TraceId"].as_u64().unwrap_or(0),
        t["Route"].as_str().unwrap_or("?"),
        t["DurationNs"].as_u64().unwrap_or(0) as f64 / 1e6,
        spans.len(),
        t["Reason"].as_str().unwrap_or("?"),
        if t["Errored"].as_bool().unwrap_or(false) {
            " (errored)"
        } else {
            ""
        },
    );
    let dropped = t["SpansDropped"].as_u64().unwrap_or(0);
    if dropped > 0 {
        println!("({dropped} spans dropped at the per-trace cap; tree is truncated)");
    }

    // Index the tree: spans arrive in completion order.
    let sid = |s: &Value| s["Id"].as_u64().unwrap_or(0);
    let dur = |s: &Value| s["DurationNs"].as_u64().unwrap_or(0);
    let mut children: std::collections::BTreeMap<u64, Vec<&Value>> = std::collections::BTreeMap::new();
    for s in spans {
        children.entry(s["ParentId"].as_u64().unwrap_or(0)).or_default().push(s);
    }
    for kids in children.values_mut() {
        kids.sort_by_key(|s| s["StartNs"].as_u64().unwrap_or(0));
    }

    // Critical path: greedy descent into the longest child.
    let mut critical = std::collections::BTreeSet::new();
    let mut cursor: Vec<&Value> = children.get(&0).cloned().unwrap_or_default();
    while let Some(longest) = cursor.iter().max_by_key(|s| dur(s)) {
        critical.insert(sid(longest));
        cursor = children.get(&sid(longest)).cloned().unwrap_or_default();
    }

    let mut stack: Vec<(&Value, usize)> = children
        .get(&0)
        .map(|roots| roots.iter().rev().map(|s| (*s, 0)).collect())
        .unwrap_or_default();
    while let Some((s, depth)) = stack.pop() {
        let kids = children.get(&sid(s)).cloned().unwrap_or_default();
        let child_ns: u64 = kids.iter().map(|c| dur(c)).sum();
        let annos = s["Annotations"]
            .as_array()
            .map(|a| {
                a.iter()
                    .map(|kv| format!("{}={}", kv[0].as_str().unwrap_or("?"), kv[1].as_str().unwrap_or("?")))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        println!(
            "{:10.3} ms  self {:8.3} ms {}{}{:indent$}{} {}",
            dur(s) as f64 / 1e6,
            dur(s).saturating_sub(child_ns) as f64 / 1e6,
            if critical.contains(&sid(s)) { "*" } else { " " },
            if s["Status"].as_str() == Some("Error") {
                "!"
            } else {
                " "
            },
            "",
            s["Name"].as_str().unwrap_or("?"),
            annos,
            indent = depth * 2 + 1,
        );
        for k in kids.into_iter().rev() {
            stack.push((k, depth + 1));
        }
    }
    Ok(())
}

fn stringify(e: std::io::Error) -> String {
    format!("connection failed: {e}")
}

fn check(r: &ofmf_rest::client::ClientResponse) -> Result<(), String> {
    if r.status >= 400 {
        let msg = r
            .json()
            .and_then(|v| v["error"]["message"].as_str().map(str::to_string))
            .unwrap_or_default();
        return Err(format!("HTTP {}: {msg}", r.status));
    }
    Ok(())
}

fn print_response(r: &ofmf_rest::client::ClientResponse) -> Result<(), String> {
    check(r)?;
    match r.json() {
        Some(v) => println!("{}", serde_json::to_string_pretty(&v).unwrap()),
        None => println!("{}", String::from_utf8_lossy(&r.body)),
    }
    Ok(())
}
