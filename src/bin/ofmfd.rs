//! `ofmfd` — the OFMF daemon: boots the management framework with the three
//! simulated fabric agents and serves the Redfish tree over HTTP, polling
//! agents for events/telemetry on a fixed cadence.
//!
//! ```text
//! Usage: ofmfd [--port N] [--nodes N] [--targets N] [--seed N]
//!              [--auth USER:PASSWORD] [--poll-ms N] [--workers N]
//!              [--max-conns N] [--rest-backend epoll|threads]
//!              [--wal-dir PATH] [--fsync always|batch:<ms>|off]
//! ```
//!
//! With `--wal-dir`, every control-plane mutation is journaled to a
//! write-ahead log and the daemon resumes from it after a restart
//! (`--fsync` trades durability for latency; default `batch:5`).
//!
//! Example session:
//!
//! ```text
//! $ cargo run --bin ofmfd -- --port 8421 &
//! $ curl -s http://127.0.0.1:8421/redfish/v1 | jq .RedfishVersion
//! "1.15.0"
//! ```

use composer::{Composer, Strategy};
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_core::{Clock, Ofmf};
use ofmf_repro::ComposerBridge;
use ofmf_rest::{Backend, RestServer, Router, ServerConfig};
use ofmf_wal::{FsyncPolicy, Wal};
use std::collections::HashMap;
use std::sync::Arc;

struct Config {
    port: u16,
    nodes: usize,
    targets: usize,
    seed: u64,
    auth: Option<(String, String)>,
    poll_ms: u64,
    workers: usize,
    max_conns: usize,
    backend: Backend,
    wal_dir: Option<std::path::PathBuf>,
    fsync: FsyncPolicy,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        port: 8421,
        nodes: 4,
        targets: 2,
        seed: 2026,
        auth: None,
        poll_ms: 500,
        workers: 8,
        max_conns: 4096,
        backend: Backend::Epoll,
        wal_dir: None,
        fsync: FsyncPolicy::Batch(5),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--port" => cfg.port = value("--port")?.parse().map_err(|e| format!("--port: {e}"))?,
            "--nodes" => cfg.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--targets" => cfg.targets = value("--targets")?.parse().map_err(|e| format!("--targets: {e}"))?,
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--poll-ms" => cfg.poll_ms = value("--poll-ms")?.parse().map_err(|e| format!("--poll-ms: {e}"))?,
            "--workers" => cfg.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--max-conns" => cfg.max_conns = value("--max-conns")?.parse().map_err(|e| format!("--max-conns: {e}"))?,
            "--rest-backend" => {
                cfg.backend = match value("--rest-backend")?.as_str() {
                    "epoll" => Backend::Epoll,
                    "threads" => Backend::ThreadPool,
                    other => return Err(format!("--rest-backend expects epoll|threads, got '{other}'")),
                }
            }
            "--auth" => {
                let v = value("--auth")?;
                let (u, p) = v
                    .split_once(':')
                    .ok_or_else(|| "--auth expects USER:PASSWORD".to_string())?;
                cfg.auth = Some((u.to_string(), p.to_string()));
            }
            "--wal-dir" => cfg.wal_dir = Some(std::path::PathBuf::from(value("--wal-dir")?)),
            "--fsync" => {
                let v = value("--fsync")?;
                cfg.fsync = FsyncPolicy::parse(&v)
                    .ok_or_else(|| format!("--fsync expects always|batch:<ms>|off, got '{v}'"))?;
            }
            "--help" | "-h" => {
                return Err("usage: ofmfd [--port N] [--nodes N] [--targets N] [--seed N] \
                            [--auth USER:PASSWORD] [--poll-ms N] [--workers N] \
                            [--max-conns N] [--rest-backend epoll|threads] \
                            [--wal-dir PATH] [--fsync always|batch:<ms>|off]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut creds = HashMap::new();
    let require_auth = cfg.auth.is_some();
    if let Some((u, p)) = &cfg.auth {
        creds.insert(u.clone(), p.clone());
    }
    let ofmf = match &cfg.wal_dir {
        Some(dir) => {
            let wal = match Wal::open(dir, cfg.fsync) {
                Ok(w) => Arc::new(w),
                Err(e) => {
                    eprintln!("cannot open WAL at {}: {e}", dir.display());
                    std::process::exit(1);
                }
            };
            match Ofmf::with_wal_clock("ofmfd", creds, cfg.seed, wal, Arc::new(Clock::wall())) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("cannot replay WAL at {}: {e}", dir.display());
                    std::process::exit(1);
                }
            }
        }
        None => Ofmf::new_wall("ofmfd", creds, cfg.seed),
    };
    let recovered = ofmf.was_recovered();

    let shape = RackShape {
        compute_nodes: cfg.nodes,
        targets: cfg.targets,
        leaves: (cfg.nodes / 8).max(2),
        spines: 2,
        ..RackShape::default()
    };
    ofmf.register_agent(Arc::new(cxl_agent("CXL0", &shape, 1 << 20, cfg.seed ^ 1)))
        .expect("fabric id free at boot");
    ofmf.register_agent(Arc::new(nvmeof_agent("NVME0", &shape, 1 << 40, cfg.seed ^ 2)))
        .expect("fabric id free at boot");
    ofmf.register_agent(Arc::new(infiniband_agent("IB0", &shape, "A100", cfg.seed ^ 3)))
        .expect("fabric id free at boot");

    let composer = Arc::new(Composer::new(Arc::clone(&ofmf), Strategy::TopologyAware));
    composer.attach_snapshot_provider();
    if recovered {
        ofmf.finish_recovery();
        let (restored, compensated) = composer.recover();
        println!("ofmfd: resumed from WAL ({restored} composition(s) restored, {compensated} compensated)");
    }
    let bridge = ComposerBridge::shared(Arc::clone(&composer));
    let router = Arc::new(Router::new(Arc::clone(&ofmf), require_auth).with_compose_service(Arc::new(bridge)));
    let server_config = ServerConfig {
        workers: cfg.workers,
        max_connections: cfg.max_conns,
        backend: cfg.backend,
    };
    let server = match RestServer::start_with(&format!("0.0.0.0:{}", cfg.port), router, server_config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind port {}: {e}", cfg.port);
            std::process::exit(1);
        }
    };

    println!(
        "ofmfd: serving {} resources at {}",
        ofmf.registry.len(),
        server.base_url()
    );
    println!("ofmfd: fabrics {:?}", ofmf.fabric_ids());
    println!(
        "ofmfd: auth {}, polling agents every {} ms",
        if require_auth { "required" } else { "open" },
        cfg.poll_ms
    );
    println!(
        "ofmfd: rest backend {:?}, {} worker(s), shedding load past {} connections",
        cfg.backend, cfg.workers, cfg.max_conns
    );
    match &cfg.wal_dir {
        Some(dir) => println!(
            "ofmfd: durability on, journal at {} (fsync {:?})",
            dir.display(),
            cfg.fsync
        ),
        None => println!("ofmfd: durability off (no --wal-dir); state is lost on exit"),
    }

    // Poll loop on the main thread; the server owns its own threads.
    loop {
        std::thread::sleep(std::time::Duration::from_millis(cfg.poll_ms));
        let events = ofmf.poll();
        if events > 0 {
            println!("ofmfd: processed {events} agent event(s)");
        }
    }
}
