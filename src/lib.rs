//! # ofmf-repro
//!
//! Umbrella crate of the OFMF reproduction: *Centralized Composable HPC
//! Management with the OpenFabrics Management Framework*.
//!
//! Re-exports the whole stack and provides [`demo_rig`], the canonical
//! "three fabrics behind one OFMF" setup used by the examples, integration
//! tests and benches.
//!
//! ```
//! use ofmf_repro::{demo_rig, composer::{Composer, CompositionRequest, Strategy}};
//! use std::sync::Arc;
//!
//! let rig = demo_rig(42);
//! let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::TopologyAware);
//! let req = CompositionRequest::compute_only("doc-job", 8, 8).with_fabric_memory_mib(1024);
//! let system = composer.compose(&req).unwrap();
//! assert_eq!(system.bound_memory_mib(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cluster_sim;
pub use composer;
pub use fabric_sim;
pub use ofmf_agents;
pub use ofmf_core;
pub use ofmf_rest;
pub use redfish_model;

use composer::{Composer, CompositionRequest};
use ofmf_agents::flavors::{cxl_agent, infiniband_agent, nvmeof_agent, RackShape};
use ofmf_agents::SimAgent;
use ofmf_core::Ofmf;
use redfish_model::odata::ODataId;
use redfish_model::{RedfishError, RedfishResult};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Adapts [`composer::Composer`] to the REST layer's
/// [`ofmf_rest::ComposeService`] hook, so `POST
/// /redfish/v1/CompositionService/Actions/CompositionService.Compose`
/// runs the real allocation + bind pipeline — and the request's span tree
/// extends through composer, supervisors and agents.
pub struct ComposerBridge {
    composer: Arc<Composer>,
}

impl ComposerBridge {
    /// Wrap a composer for attachment via
    /// [`ofmf_rest::Router::with_compose_service`].
    pub fn new(composer: Composer) -> Self {
        Self::shared(Arc::new(composer))
    }

    /// Wrap an already-shared composer (daemons keep their own handle for
    /// crash recovery and snapshot wiring).
    pub fn shared(composer: Arc<Composer>) -> Self {
        ComposerBridge { composer }
    }

    fn parse_request(body: &Value) -> RedfishResult<CompositionRequest> {
        let name = body
            .get("Name")
            .and_then(Value::as_str)
            .ok_or_else(|| RedfishError::BadRequest("Compose requires a Name".into()))?;
        if !redfish_model::path::valid_member_id(name) {
            return Err(RedfishError::BadRequest(format!(
                "invalid composed-system name '{name}'"
            )));
        }
        let u = |key: &str| body.get(key).and_then(Value::as_u64).unwrap_or(0);
        let f = |key: &str| body.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        let mut req = CompositionRequest::compute_only(name, u("Cores") as u32, u("LocalMemoryGiB"))
            .with_fabric_memory_mib(u("FabricMemoryMiB"))
            .with_gpus(u("Gpus") as u32)
            .with_storage_bytes(u("StorageBytes"))
            .with_memory_bandwidth_gbps(f("MemoryBandwidthGbps"))
            .with_storage_bandwidth_gbps(f("StorageBandwidthGbps"));
        if body.get("SpreadMemory").and_then(Value::as_bool).unwrap_or(false) {
            req = req.with_spread_memory();
        }
        Ok(req)
    }
}

impl ofmf_rest::ComposeService for ComposerBridge {
    fn compose(&self, body: &Value) -> RedfishResult<ODataId> {
        let req = Self::parse_request(body)?;
        Ok(self.composer.compose(&req)?.system)
    }
}

/// A booted OFMF with one CXL memory fabric, one NVMe-oF storage fabric and
/// one InfiniBand accelerator fabric registered.
pub struct DemoRig {
    /// The management framework.
    pub ofmf: Arc<Ofmf>,
    /// The CXL agent (1 TiB of pooled memory per appliance).
    pub cxl: Arc<SimAgent>,
    /// The NVMe-oF agent (1 TiB pools).
    pub nvmeof: Arc<SimAgent>,
    /// The InfiniBand agent (pooled A100s).
    pub infiniband: Arc<SimAgent>,
}

/// Boot the canonical demo rig: 4 shared compute nodes reachable on all
/// three fabrics, 2 target devices per fabric. Deterministic in `seed`.
pub fn demo_rig(seed: u64) -> DemoRig {
    demo_rig_with_shape(seed, &RackShape::default())
}

/// [`demo_rig`] with a custom rack shape.
pub fn demo_rig_with_shape(seed: u64, shape: &RackShape) -> DemoRig {
    let ofmf = Ofmf::new("ofmf-demo-rig", HashMap::new(), seed);
    let cxl = Arc::new(cxl_agent("CXL0", shape, 1 << 20, seed ^ 1));
    let nvmeof = Arc::new(nvmeof_agent("NVME0", shape, 1 << 40, seed ^ 2));
    let infiniband = Arc::new(infiniband_agent("IB0", shape, "A100", seed ^ 3));
    ofmf.register_agent(Arc::clone(&cxl) as Arc<dyn ofmf_core::Agent>)
        .expect("fresh rig");
    ofmf.register_agent(Arc::clone(&nvmeof) as Arc<dyn ofmf_core::Agent>)
        .expect("fresh rig");
    ofmf.register_agent(Arc::clone(&infiniband) as Arc<dyn ofmf_core::Agent>)
        .expect("fresh rig");
    DemoRig {
        ofmf,
        cxl,
        nvmeof,
        infiniband,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_rig_boots_three_fabrics() {
        let rig = demo_rig(1);
        assert_eq!(rig.ofmf.fabric_ids(), vec!["CXL0", "IB0", "NVME0"]);
        assert!(rig.ofmf.registry.len() > 50, "a real tree: {}", rig.ofmf.registry.len());
        assert!(rig.ofmf.registry.dangling_links().is_empty());
    }
}
