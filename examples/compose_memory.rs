//! OOM mitigation: a running job's memory demand grows past its
//! composition, and the Composability Manager binds more fabric-attached
//! memory **without restarting the job** — the exact failure mode the
//! paper's introduction motivates ("out-of-memory conditions … when the
//! dynamic addition of memory would be able to help mitigate this
//! problem").
//!
//! Run with: `cargo run --example compose_memory`

use composer::{Composer, CompositionRequest, Strategy};
use ofmf_repro::demo_rig;
use redfish_model::odata::ODataId;
use redfish_model::resources::events::EventType;
use std::sync::Arc;

fn main() {
    let rig = demo_rig(7);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::BestFit);

    // An observability client subscribes to composition events.
    let (_sub, events) = rig
        .ofmf
        .events
        .subscribe(
            &rig.ofmf.registry,
            "channel://ops-dashboard",
            vec![EventType::ResourceUpdated],
            vec![],
        )
        .unwrap();

    // The job starts with 16 GiB of fabric memory.
    let job = composer
        .compose(&CompositionRequest::compute_only("genomics-42", 32, 64).with_fabric_memory_mib(16 * 1024))
        .unwrap();
    let total = |sys: &ODataId| {
        rig.ofmf.get(sys).unwrap().0["MemorySummary"]["TotalSystemMemoryGiB"]
            .as_u64()
            .unwrap()
    };
    println!("job composed: {} with {} GiB", job.system, total(&job.system));

    // Memory pressure climbs: the runtime (or a telemetry threshold) asks
    // for three successive growth steps.
    for step in 1..=3 {
        let extra_mib = 32 * 1024;
        let binding = composer.grow_memory(&job.system, extra_mib).expect("pool has room");
        println!(
            "growth {step}: +{} MiB bound from {} (connection {})",
            extra_mib, binding.resource, binding.connection
        );
        println!("  system now reports {} GiB", total(&job.system));
    }

    // The events the dashboard saw:
    println!("\nevents observed by the subscribed client:");
    while let Ok(batch) = events.try_recv() {
        for e in batch.events.iter() {
            if e.message.contains("grew") {
                println!("  [{}] {} ({})", e.severity, e.message, e.origin_of_condition.odata_id);
            }
        }
    }

    // Show the chunks as Redfish resources.
    let live = composer.find(&job.system).unwrap();
    println!("\nmemory bindings of {}:", job.system.leaf());
    for b in live
        .bindings
        .iter()
        .filter(|b| b.kind == composer::request::BindingKind::Memory)
    {
        let (doc, _) = rig.ofmf.get(&b.resource).unwrap();
        println!("  {} = {} MiB", b.resource, doc["MemoryChunkSizeMiB"]);
    }
    println!("total fabric memory bound: {} MiB", live.bound_memory_mib());
}
