//! The wire path: start the OFMF REST server on localhost, then drive it
//! with real HTTP — session login, tree walking, zone + connection
//! creation, event polling.
//!
//! Run with: `cargo run --example rest_client`

use ofmf_repro::demo_rig;
use ofmf_rest::{HttpClient, RestServer, Router};
use serde_json::json;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    // Boot an OFMF that requires authentication.
    let mut creds = HashMap::new();
    creds.insert("admin".to_string(), "Sup3rSecret".to_string());
    let ofmf = ofmf_core::Ofmf::new_wall("rest-example", creds, 5);
    // Reuse the demo agents.
    let rig = demo_rig(5);
    // (demo_rig made its own OFMF; for the wire demo we serve *that* tree,
    //  open-access, plus the authenticated one just for the login demo.)
    let open_router = Arc::new(Router::new(Arc::clone(&rig.ofmf), false));
    let auth_router = Arc::new(Router::new(ofmf, true));
    let open = RestServer::start("127.0.0.1:0", open_router, 4).unwrap();
    let auth = RestServer::start("127.0.0.1:0", auth_router, 2).unwrap();
    println!("open OFMF serving at  {}", open.base_url());
    println!("auth OFMF serving at  {}\n", auth.base_url());

    // --- authenticated service: login dance ---
    let mut ac = HttpClient::new(auth.addr());
    let denied = ac.get("/redfish/v1/Systems").unwrap();
    println!("GET /redfish/v1/Systems without a token -> {}", denied.status);
    let login = ac
        .post(
            "/redfish/v1/SessionService/Sessions",
            &json!({"UserName": "admin", "Password": "Sup3rSecret"}),
        )
        .unwrap();
    let token = login.header("x-auth-token").unwrap().to_string();
    println!("POST Sessions -> {} (token {}…)", login.status, &token[..12]);
    ac.token = Some(token);
    println!(
        "GET /redfish/v1/Systems with the token -> {}\n",
        ac.get("/redfish/v1/Systems").unwrap().status
    );

    // --- open service: compose over the wire ---
    let mut c = HttpClient::new(open.addr());
    let fabrics = c.get("/redfish/v1/Fabrics").unwrap().json().unwrap();
    println!("fabrics: {}", fabrics["Members@odata.count"]);

    // Subscribe to alerts first so we can poll what happens.
    let sub = c
        .post(
            "/redfish/v1/EventService/Subscriptions",
            &json!({"Destination": "rest-poll://example", "EventTypes": ["ResourceAdded"]}),
        )
        .unwrap();
    let sub_loc = sub.header("location").unwrap().to_string();

    let zone = c
        .post(
            "/redfish/v1/Fabrics/CXL0/Zones",
            &json!({"Id": "wire-zone", "Links": {"Endpoints": [
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"},
                {"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"},
            ]}}),
        )
        .unwrap();
    println!("POST zone -> {} at {}", zone.status, zone.header("location").unwrap());

    let conn = c
        .post(
            "/redfish/v1/Fabrics/CXL0/Connections",
            &json!({
                "Id": "wire-conn",
                "Zone": {"@odata.id": "/redfish/v1/Fabrics/CXL0/Zones/wire-zone"},
                "Size": 2048,
                "Links": {
                    "InitiatorEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/cn00-ep"}],
                    "TargetEndpoints": [{"@odata.id": "/redfish/v1/Fabrics/CXL0/Endpoints/mem00-ep"}],
                }
            }),
        )
        .unwrap();
    println!(
        "POST connection -> {} at {}",
        conn.status,
        conn.header("location").unwrap()
    );

    let chunk = c
        .get("/redfish/v1/Chassis/mem00/MemoryDomains/dom0/MemoryChunks?$expand=.")
        .unwrap()
        .json()
        .unwrap();
    println!("chunk carved: {} MiB", chunk["Members"][0]["MemoryChunkSizeMiB"]);

    // Poll the subscription.
    let events = c.get(&format!("{sub_loc}/Events")).unwrap().json().unwrap();
    println!("subscription saw {} event batch(es)", events["Count"]);

    // ETag discipline: a stale If-Match is refused.
    let sys = c.get("/redfish/v1/Systems/cn00").unwrap();
    let etag = sys.header("etag").unwrap().to_string();
    println!("\ncn00 etag: {etag}");
    let stale = {
        // Manually send a PATCH with a bogus If-Match via a raw request.
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(open.addr()).unwrap();
        let body = r#"{"Name":"hijack"}"#;
        write!(
            s,
            "PATCH /redfish/v1/Systems/cn00 HTTP/1.1\r\nHost: x\r\nIf-Match: W/\"9999\"\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    println!("stale If-Match PATCH -> {}", stale.lines().next().unwrap());

    open.shutdown();
    auth.shutdown();
    println!("\nservers shut down cleanly");
}
