//! Dynamic network fail-over: a spine switch dies under a live cross-leaf
//! memory connection; the fabric re-routes, the agent reports it, and the
//! OFMF event service notifies subscribers. Then a whole memory appliance
//! dies — and the Composability Manager rebinds the lost capacity from the
//! surviving pool.
//!
//! Run with: `cargo run --example failover`

use composer::{Composer, CompositionRequest, Strategy};
use fabric_sim::failure::Fault;
use fabric_sim::ids::{DeviceId, SwitchId};
use ofmf_repro::demo_rig;
use redfish_model::resources::events::EventType;
use std::sync::Arc;

fn main() {
    let rig = demo_rig(99);
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::FirstFit);

    // Ops subscribes to alerts on the CXL fabric only.
    let (_sub, alerts) = rig
        .ofmf
        .events
        .subscribe(
            &rig.ofmf.registry,
            "channel://pager",
            vec![EventType::Alert, EventType::StatusChange],
            vec![redfish_model::odata::ODataId::new("/redfish/v1/Fabrics/CXL0")],
        )
        .unwrap();

    // Two jobs. First-fit gives job A cn00 (leaf0) with mem00 (leaf0): a
    // same-leaf path. Job B lands on cn01 (leaf1) with mem00 (leaf0): its
    // path must cross a spine — the one we will kill.
    let job_a = composer
        .compose(&CompositionRequest::compute_only("same-leaf", 8, 8).with_fabric_memory_mib(4 * 1024))
        .unwrap();
    let job_b = composer
        .compose(&CompositionRequest::compute_only("cross-leaf", 8, 8).with_fabric_memory_mib(4 * 1024))
        .unwrap();
    println!("composed {} and {}", job_a.system.leaf(), job_b.system.leaf());

    // Fail spine0: job B's connection should transparently re-route via
    // spine1; job A never notices.
    println!("\n-- injecting: spine0 down --");
    let (failed_over, lost) = rig.cxl.inject_fault(Fault::SwitchDown(SwitchId(0)));
    rig.ofmf.poll();
    println!("fabric reports: {failed_over} connection(s) re-routed, {lost} lost");

    // Now kill the memory appliance both jobs carve from. Device 4 is
    // mem00 in the demo rig (4 compute nodes then 2 appliances).
    println!("\n-- injecting: memory appliance mem00 down --");
    let (failed_over, lost) = rig.cxl.inject_fault(Fault::DeviceDown(DeviceId(4)));
    rig.ofmf.poll();
    println!("fabric reports: {failed_over} connection(s) re-routed, {lost} lost");

    println!("\nalerts delivered to the pager:");
    while let Ok(batch) = alerts.try_recv() {
        for e in batch.events.iter() {
            println!("  [{:8}] {}", e.severity, e.message);
        }
    }

    // Reconcile: the composer rebinds the lost capacity from mem01.
    println!("\n-- reconciling --");
    let (repaired, unrecovered) = composer.reconcile();
    println!("reconcile: {repaired} binding(s) rebound, {unrecovered} unrecoverable");

    for sys in [&job_a.system, &job_b.system] {
        let live = composer.find(sys).unwrap();
        let homes: Vec<&str> = live.bindings.iter().map(|b| b.resource.as_str()).collect();
        println!(
            "{}: {} MiB bound, now backed by {:?}",
            sys.leaf(),
            live.bound_memory_mib(),
            homes
        );
    }
}
