//! Quickstart: boot an OFMF with three fabric agents, walk the unified
//! Redfish tree, and compose a system from disaggregated pools.
//!
//! Run with: `cargo run --example quickstart`

use composer::{Composer, CompositionRequest, Strategy};
use ofmf_repro::demo_rig;
use redfish_model::odata::ODataId;
use std::sync::Arc;

fn main() {
    // 1. Boot: one OFMF, three technology-specific agents (CXL memory,
    //    NVMe-oF storage, InfiniBand accelerators), each managing its own
    //    simulated fabric.
    let rig = demo_rig(2026);
    println!("== OFMF booted ==");
    for info in rig.ofmf.agent_infos() {
        println!(
            "  fabric {:8} technology {:16} agent {}",
            info.fabric_id, info.technology, info.version
        );
    }

    // 2. The whole disaggregated infrastructure is one Redfish tree.
    let (root, _) = rig.ofmf.get(&ODataId::new("/redfish/v1")).unwrap();
    println!("\n== Service root ==\n{}", serde_json::to_string_pretty(&root).unwrap());
    println!("tree size: {} resources", rig.ofmf.registry.len());

    // 3. Ask the Composability Manager for a system: 32 cores, 64 GiB
    //    local, 128 GiB fabric memory, 1 GPU, 512 GiB NVMe.
    let composer = Composer::new(Arc::clone(&rig.ofmf), Strategy::TopologyAware);
    let request = CompositionRequest::compute_only("quickstart-job", 32, 64)
        .with_fabric_memory_mib(128 * 1024)
        .with_gpus(1)
        .with_storage_bytes(512 << 30);
    let system = composer.compose(&request).expect("pools cover the request");

    println!("\n== Composed system ==");
    println!("  system:   {}", system.system);
    println!("  node:     {}", system.node);
    for b in &system.bindings {
        println!(
            "  binding:  {:?} {:>12} units on {} via {}",
            b.kind, b.size, b.resource, b.fabric
        );
    }
    let (doc, _) = rig.ofmf.get(&system.system).unwrap();
    println!(
        "  memory:   {} GiB total (local + fabric)",
        doc["MemorySummary"]["TotalSystemMemoryGiB"]
    );

    // 4. Inventory reflects the consumption…
    let inv = composer.inventory();
    println!("\n== Remaining pools ==");
    println!("  free compute nodes: {}", inv.compute.len());
    println!("  free fabric memory: {} MiB", inv.free_memory_mib());
    println!("  free GPUs:          {}", inv.free_gpus());
    println!("  free storage:       {} bytes", inv.free_storage_bytes());

    // 5. …and decomposition returns everything to the pools.
    composer.decompose(&system.system).unwrap();
    let inv = composer.inventory();
    println!("\n== After decompose ==");
    println!("  free compute nodes: {}", inv.compute.len());
    println!("  free fabric memory: {} MiB", inv.free_memory_mib());
    println!("  free GPUs:          {}", inv.free_gpus());
}
