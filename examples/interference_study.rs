//! The burst-buffer interference study (the supplied paper text's
//! evaluation section), at smoke scale: five experiment classes × several
//! HPL sizes over the cluster simulator, with 95 % confidence intervals.
//!
//! The full paper-scale sweep lives in the bench harness
//! (`cargo run -p ofmf-bench --bin fig_multinode`).
//!
//! Run with: `cargo run --release --example interference_study`

use cluster_sim::experiment::{run, ExperimentClass, ExperimentPlan, Layout};
use cluster_sim::node::NodeSpec;
use cluster_sim::workload::ior::IorParams;

fn main() {
    let spec = NodeSpec::thunderx2();
    println!(
        "node model: {} cores, {} GiB, {} GFLOPS sustained\n",
        spec.cores, spec.memory_gib, spec.gflops
    );

    // Show the experiment layouts (Fig. process-layout).
    println!("experiment classes (n = 4 example):");
    for class in ExperimentClass::ALL {
        let l = Layout::build(class, 4);
        let (k, m) = class.k_m(4);
        println!(
            "  {:26} k={k} m={m} allocation={:2} nodes, HPL on {:?}",
            class.label(),
            l.allocation_size(),
            l.hpl_nodes()
        );
    }

    // Run the smoke sweep.
    let plan = ExperimentPlan::smoke(42);
    println!(
        "\nrunning {} classes × {:?} nodes × {} reps…",
        plan.classes.len(),
        plan.node_counts,
        plan.reps
    );
    let results = run(&plan, &spec);

    println!(
        "\n{:26} {:>5} {:>10} {:>18} {:>9}",
        "class", "n", "mean (s)", "95% CI (s)", "vs Lustre"
    );
    for &n in &plan.node_counts {
        let lustre = results
            .iter()
            .find(|r| r.class == ExperimentClass::MatchingLustre && r.n == n)
            .unwrap();
        for class in ExperimentClass::ALL {
            let r = results.iter().find(|r| r.class == class && r.n == n).unwrap();
            println!(
                "{:26} {:>5} {:>10.1} [{:>7.1}, {:>7.1}] {:>+8.1}%",
                class.label(),
                n,
                r.runtime.mean,
                r.runtime.ci_low,
                r.runtime.ci_high,
                r.runtime.rel_diff(&lustre.runtime) * 100.0
            );
        }
        println!();
    }

    // The headline observations, verified live:
    let at = |c: ExperimentClass, n: usize| {
        results
            .iter()
            .find(|r| r.class == c && r.n == n)
            .unwrap()
            .runtime
            .clone()
    };
    let n = *plan.node_counts.last().unwrap();
    let lustre = at(ExperimentClass::MatchingLustre, n);
    let hpl_only = at(ExperimentClass::HplOnly, n);
    let matching = at(ExperimentClass::MatchingBeeond, n);
    println!("observations at n = {n}:");
    println!(
        "  idle BeeOND daemons cost {:+.1}% vs the daemon-free Lustre control",
        hpl_only.rel_diff(&lustre) * 100.0
    );
    println!(
        "  matching IOR over BeeOND costs {:+.1}% vs HPL-only",
        matching.rel_diff(&hpl_only) * 100.0
    );
    println!(
        "\nIOR invocation modeled (Table III): {}",
        IorParams::default().command_line()
    );
}
